// Package dmms exposes the data market platform over HTTP: the wire-level
// Data Market Management System. Sellers and buyers run remote platforms
// (SMP/BMP) that talk JSON to the arbiter (AMP) — the deployment shape of
// paper Fig. 2. Only serializable WTP tasks travel over the wire (coverage
// and classifier packages); arbitrary code packages stay in-process.
package dmms

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/arbiter"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/engine"
	"repro/internal/license"
	"repro/internal/mltask"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/wtp"
)

// Server wraps a core.Platform with an HTTP API. When built with an engine
// (NewEngineServer) it additionally serves the async submit/poll surface:
// submissions return tickets immediately, epochs clear the market in the
// background, and clients follow progress via tickets and the event log.
type Server struct {
	routeSet
	platform *core.Platform
	engine   *engine.Engine
	snapshot SnapshotFunc
}

// httpMetrics bundles the per-route instruments with the registry that
// backs GET /metrics.
type httpMetrics struct {
	reg  *obs.Registry
	reqs *obs.CounterVec   // dmms_http_requests_total{route,code}
	dur  *obs.HistogramVec // dmms_http_request_seconds{route}
}

// routeSet is the HTTP plumbing shared by the market servers (single-engine
// Server and FederationServer): a mux whose routes gain per-route count and
// latency series once a telemetry registry is wired. hm is an atomic pointer
// so metrics can be wired after construction — the gateway builds the server
// first — without racing in-flight requests.
type routeSet struct {
	mux *http.ServeMux
	hm  atomic.Pointer[httpMetrics]
}

// SetMetrics wires a telemetry registry: every route gains request-count and
// latency series, and GET /metrics serves the registry's Prometheus text.
// Pass nil to disable (the endpoint answers 503 again).
func (rs *routeSet) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		rs.hm.Store(nil)
		return
	}
	rs.hm.Store(&httpMetrics{
		reg: reg,
		reqs: reg.NewCounterVec("dmms_http_requests_total",
			"HTTP requests served, by route pattern and status code.", "route", "code"),
		dur: reg.NewHistogramVec("dmms_http_request_seconds",
			"HTTP request latency by route pattern.", obs.DefBuckets, "route"),
	})
}

// SnapshotFunc persists an engine checkpoint (see internal/wal) and returns
// its path and the last event seq it covers. Wired by the gateway when a WAL
// is configured; without one the /snapshot endpoint answers 503.
type SnapshotFunc func() (path string, seq int, err error)

// SetSnapshotFunc enables the POST /snapshot admin endpoint.
func (s *Server) SetSnapshotFunc(fn SnapshotFunc) { s.snapshot = fn }

// NewServer builds the synchronous HTTP front end (no engine; the async
// endpoints answer 503).
func NewServer(p *core.Platform) *Server { return NewEngineServer(p, nil) }

// NewEngineServer builds the HTTP front end over a concurrent market engine.
// The caller owns the engine's lifecycle (Start/Stop).
func NewEngineServer(p *core.Platform, eng *engine.Engine) *Server {
	s := &Server{routeSet: routeSet{mux: http.NewServeMux()}, platform: p, engine: eng}
	s.handle("POST /participants", s.syncMutation(s.handleParticipants))
	s.handle("POST /datasets", s.syncMutation(s.handleDatasets))
	s.handle("POST /requests", s.syncMutation(s.handleRequests))
	s.handle("POST /match", s.handleMatch)
	s.handle("POST /report", s.syncMutation(s.handleReport))
	s.handle("GET /history", s.handleHistory)
	s.handle("GET /demand", s.handleDemand)
	s.handle("GET /balance", s.handleBalance)
	s.handle("GET /designs", s.handleDesigns)
	s.handle("POST /save", s.handleSave)
	// Async (engine-backed) surface.
	s.handle("POST /async/participants", s.withEngine(s.handleAsyncParticipants))
	s.handle("POST /async/datasets", s.withEngine(s.handleAsyncDatasets))
	s.handle("POST /async/requests", s.withEngine(s.handleAsyncRequests))
	s.handle("POST /async/report", s.withEngine(s.handleAsyncReport))
	s.handle("GET /async/tickets/{id}", s.withEngine(s.handleTicket))
	s.handle("GET /events", s.withEngine(s.handleEvents))
	s.handle("POST /epoch", s.withEngine(s.handleEpoch))
	s.handle("GET /engine/stats", s.withEngine(s.handleEngineStats))
	s.handle("GET /settlements", s.withEngine(s.handleSettlements))
	s.handle("POST /snapshot", s.withEngine(s.handleSnapshot))
	// Telemetry exposition — deliberately uninstrumented: a scrape should
	// never perturb the series it is reading.
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// handle registers an instrumented route. The metric label is the pattern's
// path part ("/async/tickets/{id}"), so path parameters never explode the
// series cardinality.
func (rs *routeSet) handle(pattern string, h http.HandlerFunc) {
	route := pattern
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		route = pattern[i+1:]
	}
	rs.mux.HandleFunc(pattern, rs.instrument(route, h))
}

// statusRecorder captures the response status for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-route latency and count series. With
// no metrics wired it is a plain passthrough.
func (rs *routeSet) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hm := rs.hm.Load()
		if hm == nil {
			h(w, r)
			return
		}
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		hm.dur.With(route).Observe(time.Since(start).Seconds())
		hm.reqs.With(route, strconv.Itoa(rec.code)).Inc()
	}
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (rs *routeSet) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hm := rs.hm.Load()
	if hm == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("dmms: metrics disabled (run the gateway with -metrics)"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = hm.reg.WritePrometheus(w)
}

// syncMutation guards the synchronous state-changing endpoints: on a
// WAL-backed (durable) engine server they would mutate the platform without
// an event-log record, making the durable log incomplete — and a later
// replay could even fail outright (e.g. a settlement against a buyer whose
// registration was never logged). Durable servers accept mutations only
// through the async, event-logged surface.
func (s *Server) syncMutation(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.engine != nil && s.engine.Durable() {
			// The marker header lets clients branch on the refusal
			// (ErrSyncDisabled) instead of string-matching the guidance.
			w.Header().Set(SyncDisabledHeader, "1")
			writeErr(w, http.StatusConflict, fmt.Errorf(
				"dmms: this server is WAL-backed; synchronous mutations bypass the durable event log — use the /async endpoints"))
			return
		}
		h(w, r)
	}
}

func (s *Server) withEngine(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.engine == nil {
			writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("dmms: no engine configured; use the synchronous endpoints"))
			return
		}
		h(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (rs *routeSet) ServeHTTP(w http.ResponseWriter, r *http.Request) { rs.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// PriorityHeader carries a request's priority class ("low" | "normal" |
// "high" or an integer) on POST /async/requests; it overrides the JSON
// body's priority field.
const PriorityHeader = "X-DMMS-Priority"

// SyncDisabledHeader marks a 409 as "synchronous mutations disabled on this
// WAL-backed server"; the client maps it to ErrSyncDisabled.
const SyncDisabledHeader = "X-DMMS-Sync-Disabled"

// writeSubmitErr maps an engine intake error onto the wire: admission
// rejections become 429 Too Many Requests with a Retry-After header (whole
// seconds, rounded up) so well-behaved clients back off; anything else is a
// plain 400.
func writeSubmitErr(w http.ResponseWriter, err error) {
	var oe *engine.OverloadError
	if errors.As(err, &oe) {
		secs := int(math.Ceil(oe.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeErr(w, http.StatusTooManyRequests, err)
		return
	}
	writeErr(w, http.StatusBadRequest, err)
}

// ParticipantReq registers a buyer or seller account.
type ParticipantReq struct {
	Name  string  `json:"name"`
	Funds float64 `json:"funds"`
}

func (s *Server) handleParticipants(w http.ResponseWriter, r *http.Request) {
	var req ParticipantReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.platform.Arbiter.RegisterParticipant(req.Name, req.Funds); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": req.Name})
}

// DatasetReq shares a dataset with the arbiter.
type DatasetReq struct {
	Seller   string             `json:"seller"`
	ID       string             `json:"id"`
	Relation *relation.Relation `json:"relation"`
	License  string             `json:"license"` // open|no-resale|exclusive|transfer
	TaxRate  float64            `json:"tax_rate,omitempty"`
	Author   string             `json:"author,omitempty"`
}

// datasetTerms validates a DatasetReq and derives the license terms and
// metadata shared by the sync and async share paths.
func datasetTerms(req DatasetReq) (license.Terms, wtp.DatasetMeta, error) {
	if req.Relation == nil || req.ID == "" || req.Seller == "" {
		return license.Terms{}, wtp.DatasetMeta{}, fmt.Errorf("dmms: seller, id and relation are required")
	}
	kind := license.Kind(req.License)
	if req.License == "" {
		kind = license.Open
	}
	terms := license.Terms{Kind: kind, ExclusivityTaxRate: req.TaxRate}
	meta := wtp.DatasetMeta{Dataset: req.ID, UpdatedAt: time.Now(), Author: req.Author, HasProvenance: true}
	return terms, meta, nil
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	var req DatasetReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	terms, meta, err := datasetTerms(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.platform.Arbiter.ShareDataset(req.Seller, catalog.DatasetID(req.ID), req.Relation, meta, terms); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
}

// TaskSpec is the serializable task package of a WTP-function.
type TaskSpec struct {
	Kind string `json:"kind"` // "coverage" | "classifier"
	// Coverage.
	WantRows int `json:"want_rows,omitempty"`
	// Classifier.
	Features []string `json:"features,omitempty"`
	Label    string   `json:"label,omitempty"`
	Model    string   `json:"model,omitempty"`
	Seed     int64    `json:"seed,omitempty"`
}

// CurvePointSpec is one WTP price point.
type CurvePointSpec struct {
	MinSatisfaction float64 `json:"min_satisfaction"`
	Price           float64 `json:"price"`
}

// RequestReq files a buyer's data need.
type RequestReq struct {
	Buyer   string              `json:"buyer"`
	Columns []string            `json:"columns"`
	Aliases map[string][]string `json:"aliases,omitempty"`
	Task    TaskSpec            `json:"task"`
	Curve   []CurvePointSpec    `json:"curve"`
	MinRows int                 `json:"min_rows,omitempty"`
	// Priority is the request's priority class ("low" | "normal" | "high");
	// the X-DMMS-Priority header overrides it. Async endpoint only.
	Priority string `json:"priority,omitempty"`
}

// buildRequest turns the wire form into the arbiter's Want + WTP-function,
// shared by the sync and async request paths.
func buildRequest(req RequestReq) (dod.Want, *wtp.Function, error) {
	var task wtp.Task
	switch req.Task.Kind {
	case "classifier":
		task = wtp.ClassifierTask{Spec: mltask.ClassifierTask{
			Features: req.Task.Features, Label: req.Task.Label,
			Model: mltask.ModelKind(req.Task.Model), Seed: req.Task.Seed}}
	case "coverage", "":
		task = wtp.CoverageTask{Columns: req.Columns, WantRows: req.Task.WantRows}
	default:
		return dod.Want{}, nil, fmt.Errorf("dmms: unknown task kind %q", req.Task.Kind)
	}
	f := &wtp.Function{Buyer: req.Buyer, Task: task}
	for _, p := range req.Curve {
		f.Curve = append(f.Curve, wtp.CurvePoint{MinSatisfaction: p.MinSatisfaction, Price: p.Price})
	}
	f.Constraints.MinRows = req.MinRows
	want := dod.Want{Columns: req.Columns, Aliases: req.Aliases, MinRows: req.MinRows}
	return want, f, nil
}

func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	var req RequestReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	want, f, err := buildRequest(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.platform.Arbiter.SubmitRequest(want, f)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"request_id": id})
}

// TxView is the wire form of a transaction.
type TxView struct {
	ID           string             `json:"id"`
	RequestID    string             `json:"request_id,omitempty"`
	Buyer        string             `json:"buyer"`
	Price        float64            `json:"price"`
	Satisfaction float64            `json:"satisfaction"`
	Datasets     []string           `json:"datasets"`
	SellerCuts   map[string]float64 `json:"seller_cuts"`
	ExPost       bool               `json:"ex_post"`
	Plan         []string           `json:"plan"`
	Mashup       *relation.Relation `json:"mashup,omitempty"`
}

func txView(tx *arbiter.Transaction, includeData bool) TxView {
	v := TxView{
		ID: tx.ID, RequestID: tx.RequestID, Buyer: tx.Buyer, Price: tx.Price, Satisfaction: tx.Satisfaction,
		Datasets: tx.Datasets, SellerCuts: tx.SellerCuts, ExPost: tx.ExPost, Plan: tx.Plan,
	}
	if includeData {
		v.Mashup = tx.Mashup
	}
	return v
}

// MatchResp reports one matching round.
type MatchResp struct {
	Transactions []TxView `json:"transactions"`
	Unsatisfied  []string `json:"unsatisfied"`
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	// With an engine, matching rounds belong to the epoch runner: a direct
	// MatchRound here would settle engine-tracked requests without event-log
	// publication, leaving tickets stuck and the settlement book incomplete.
	if s.engine != nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("dmms: matching is epoch-driven on this server; POST /epoch instead"))
		return
	}
	res, err := s.platform.MatchRound()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp := MatchResp{Unsatisfied: res.Unsatisfied}
	for _, tx := range res.Transactions {
		resp.Transactions = append(resp.Transactions, txView(tx, true))
	}
	writeJSON(w, http.StatusOK, resp)
}

// ReportReq settles an ex-post transaction.
type ReportReq struct {
	TxID      string  `json:"tx_id"`
	Reported  float64 `json:"reported"`
	TrueValue float64 `json:"true_value"`
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	paid, err := s.platform.Arbiter.ReportValue(req.TxID, req.Reported, req.TrueValue)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"paid": paid})
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	var out []TxView
	for _, tx := range s.platform.Arbiter.History() {
		out = append(out, txView(tx, false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDemand(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.platform.Arbiter.DemandSignals())
}

func (s *Server) handleBalance(w http.ResponseWriter, r *http.Request) {
	account := r.URL.Query().Get("account")
	if account == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("dmms: account query parameter required"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{
		"balance": s.platform.Arbiter.Ledger.Balance(account).Float(),
	})
}

func (s *Server) handleDesigns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"design": s.platform.Design.Label})
}

// SaveReq asks the server to persist its catalog to a directory.
type SaveReq struct {
	Dir string `json:"dir"`
}

func (s *Server) handleSave(w http.ResponseWriter, r *http.Request) {
	var req SaveReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Dir == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("dmms: dir is required"))
		return
	}
	if err := s.platform.Arbiter.Catalog.SaveDir(req.Dir); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"saved": req.Dir})
}

// --- async (engine-backed) handlers ---------------------------------------

// TicketResp acknowledges an async submission.
type TicketResp struct {
	Ticket string `json:"ticket"`
}

func (s *Server) handleAsyncParticipants(w http.ResponseWriter, r *http.Request) {
	var req ParticipantReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("dmms: name is required"))
		return
	}
	ticket, err := s.engine.SubmitRegister(req.Name, req.Funds)
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, TicketResp{Ticket: ticket})
}

func (s *Server) handleAsyncDatasets(w http.ResponseWriter, r *http.Request) {
	var req DatasetReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	terms, meta, err := datasetTerms(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ticket, err := s.engine.SubmitShare(req.Seller, catalog.DatasetID(req.ID), req.Relation, meta, terms)
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, TicketResp{Ticket: ticket})
}

func (s *Server) handleAsyncRequests(w http.ResponseWriter, r *http.Request) {
	var req RequestReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	want, f, err := buildRequest(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	label := req.Priority
	if h := r.Header.Get(PriorityHeader); h != "" {
		label = h
	}
	priority, err := engine.ParsePriority(label)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ticket, err := s.engine.SubmitRequestPriority(want, f, priority)
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, TicketResp{Ticket: ticket})
}

// handleAsyncReport queues an ex-post value report through the engine, so
// the settlement is epoch-applied and event-logged (value-reported) — the
// only report path a durable server accepts.
func (s *Server) handleAsyncReport(w http.ResponseWriter, r *http.Request) {
	var req ReportReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.TxID == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("dmms: tx_id is required"))
		return
	}
	ticket, err := s.engine.SubmitReport(req.TxID, req.Reported, req.TrueValue)
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, TicketResp{Ticket: ticket})
}

// TicketView is a ticket plus its stamped pipeline trace (present only when
// telemetry is on and the span has not been evicted).
type TicketView struct {
	engine.Ticket
	Trace map[obs.Stage]time.Time `json:"trace,omitempty"`
}

func (s *Server) handleTicket(w http.ResponseWriter, r *http.Request) {
	t, ok := s.engine.Ticket(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("dmms: unknown ticket %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, TicketView{Ticket: t, Trace: s.engine.TicketTrace(t.ID)})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("dmms: bad after cursor %q", v))
			return
		}
		after = n
	}
	evs := s.engine.Events(after)
	if evs == nil {
		evs = []engine.Event{}
	}
	// Strip submission payloads: they exist for WAL replay and carry the
	// full shared relations — data the market sells, not a free download.
	for i := range evs {
		evs[i].Payload = nil
	}
	writeJSON(w, http.StatusOK, evs)
}

func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	epoch, ran := s.engine.TriggerEpoch()
	writeJSON(w, http.StatusOK, map[string]any{"epoch": epoch, "ran": ran})
}

func (s *Server) handleEngineStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

// SnapshotResp reports a written checkpoint.
type SnapshotResp struct {
	Path string `json:"path"`
	Seq  int    `json:"seq"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.snapshot == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("dmms: no snapshot store configured (run the gateway with -wal-dir)"))
		return
	}
	path, seq, err := s.snapshot()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResp{Path: path, Seq: seq})
}

// SettlementView is the wire form of one settlement-book entry.
type SettlementView struct {
	TxID       string             `json:"tx_id"`
	Epoch      uint64             `json:"epoch"`
	Buyer      string             `json:"buyer"`
	Price      float64            `json:"price"`
	ArbiterCut float64            `json:"arbiter_cut"`
	SellerCuts map[string]float64 `json:"seller_cuts,omitempty"`
	ExPost     bool               `json:"ex_post,omitempty"`
}

func (s *Server) handleSettlements(w http.ResponseWriter, r *http.Request) {
	book := s.engine.Settlements()
	out := []SettlementView{}
	for _, st := range book.All() {
		v := SettlementView{
			TxID: st.TxID, Epoch: st.Epoch, Buyer: st.Buyer,
			Price: st.Price.Float(), ArbiterCut: st.ArbiterCut.Float(), ExPost: st.ExPost,
		}
		if len(st.SellerCuts) > 0 {
			v.SellerCuts = map[string]float64{}
			for name, c := range st.SellerCuts {
				v.SellerCuts[name] = c.Float()
			}
		}
		out = append(out, v)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"settlements": out,
		"conserved":   book.Conserved(),
	})
}
