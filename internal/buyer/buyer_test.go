package buyer

import (
	"testing"
	"time"

	"repro/internal/arbiter"
	"repro/internal/catalog"
	"repro/internal/license"
	"repro/internal/market"
	"repro/internal/mltask"
	"repro/internal/relation"
	"repro/internal/wtp"
)

func mkMarket(t *testing.T, mech market.Mechanism, elicit market.Elicitation) *arbiter.Arbiter {
	t.Helper()
	a, err := arbiter.New(&market.Design{
		Label: "t", Elicitation: elicit, Mechanism: mech,
		Allocator: market.Uniform{}, ArbiterFee: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"s1", "buyer1"} {
		if err := a.RegisterParticipant(n, 5000); err != nil {
			t.Fatal(err)
		}
	}
	feat := relation.New("features", relation.NewSchema(
		relation.Col("k", relation.KindInt),
		relation.Col("x1", relation.KindFloat),
		relation.Col("x2", relation.KindFloat),
		relation.Col("label", relation.KindBool),
	))
	for i := 0; i < 300; i++ {
		x1 := float64(i%20) - 10
		x2 := float64((i*7)%20) - 10
		feat.MustAppend(relation.Int(int64(i)), relation.Float(x1), relation.Float(x2), relation.Bool(x1+x2 > 0))
	}
	meta := wtp.DatasetMeta{Dataset: "features", UpdatedAt: time.Now(), Author: "s1", HasProvenance: true}
	if err := a.ShareDataset("s1", catalog.DatasetID("features"), feat, meta, license.Terms{Kind: license.Open}); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuilderClassifierFlow(t *testing.T) {
	a := mkMarket(t, market.PostedPrice{P: 80}, market.ElicitUpfront)
	p := New("buyer1", a)
	id, err := p.Need("x1", "x2", "label").
		ForClassifier(mltask.ModelLogistic, []string{"x1", "x2"}, "label", 7).
		PayingAt(0.8, 100).
		PayingAt(0.9, 150).
		FreshWithin(30 * 24 * time.Hour).
		RequireProvenance().
		Submit()
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("no request id")
	}
	res, err := a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 1 {
		t.Fatalf("transactions = %d (unsat %v)", len(res.Transactions), res.Unsatisfied)
	}
	tx := res.Transactions[0]
	if tx.Satisfaction < 0.8 {
		t.Errorf("satisfaction = %v", tx.Satisfaction)
	}
	if tx.Price != 80 {
		t.Errorf("price = %v", tx.Price)
	}
	got := p.Purchases()
	if len(got) != 1 || got[0].ID != tx.ID {
		t.Errorf("purchases = %v", got)
	}
	if p.Balance() != 5000-80 {
		t.Errorf("balance = %v", p.Balance())
	}
}

func TestBuilderValidation(t *testing.T) {
	a := mkMarket(t, market.PostedPrice{P: 1}, market.ElicitUpfront)
	p := New("buyer1", a)
	if _, err := p.Need("x1").Submit(); err == nil {
		t.Error("missing price curve must fail")
	}
	// Default task is coverage.
	b := p.Need("x1").PayingAt(0.5, 10)
	if _, err := b.Submit(); err != nil {
		t.Errorf("default coverage task should apply: %v", err)
	}
	if _, ok := b.Function().Task.(wtp.CoverageTask); !ok {
		t.Errorf("default task = %T", b.Function().Task)
	}
}

func TestBuilderConstraintsAndAliases(t *testing.T) {
	a := mkMarket(t, market.PostedPrice{P: 1}, market.ElicitUpfront)
	p := New("buyer1", a)
	b := p.Need("feat").
		Alias("feat", "x1").
		ForCoverage(10).
		PayingAt(0.9, 20).
		FromAuthors("s1").
		MinRows(5)
	if b.Want().Aliases["feat"][0] != "x1" {
		t.Error("alias not recorded")
	}
	if b.Function().Constraints.MinRows != 5 {
		t.Error("min rows not recorded")
	}
	if _, err := b.Submit(); err != nil {
		t.Fatal(err)
	}
	res, err := a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 1 {
		t.Fatalf("alias purchase failed: %v", res.Unsatisfied)
	}
	if !res.Transactions[0].Mashup.Schema.Has("feat") {
		t.Errorf("schema = %s", res.Transactions[0].Mashup.Schema)
	}
}

func TestExPostReporting(t *testing.T) {
	a := mkMarket(t, market.ExPost{Deposit: 300, AuditProb: 0, Penalty: 2}, market.ElicitExPost)
	p := New("buyer1", a)
	if _, err := p.Need("x1", "x2", "label").
		ForCoverage(100).
		PayingAt(0.5, 1). // nominal; ex-post pays by report
		Submit(); err != nil {
		t.Fatal(err)
	}
	res, err := a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 1 || !res.Transactions[0].ExPost {
		t.Fatalf("expost tx missing: %v", res.Unsatisfied)
	}
	tx := res.Transactions[0]
	before := p.Balance()
	paid, err := p.ReportValue(tx.ID, 120, 120)
	if err != nil {
		t.Fatal(err)
	}
	if paid != 120 {
		t.Errorf("paid = %v", paid)
	}
	// Deposit minus payment refunded.
	if got := p.Balance(); got != before+300-120 {
		t.Errorf("balance = %v, want %v", got, before+300-120)
	}
	if _, err := p.ReportValue("tx-9999", 1, 1); err == nil {
		t.Error("unknown tx must fail")
	}
}

func TestTrueValueRecorded(t *testing.T) {
	a := mkMarket(t, market.SecondPrice{}, market.ElicitUpfront)
	p := New("buyer1", a)
	b := p.Need("x1").ForCoverage(10).PayingAt(0.5, 40).TrueValueAt(0.5, 100)
	if b.Function().TrueValue.Price(0.6) != 100 {
		t.Error("true value curve not recorded")
	}
}
