// Package buyer implements the Buyer Management Platform (paper §4.3):
// helpers to define WTP-functions without hand-writing them (a builder over
// tasks, price curves and intrinsic constraints), submission of data needs
// to the arbiter, result delivery, and the ex-post reporting flow for buyers
// who only learn their valuation after using the data (§3.2.2.2).
package buyer

import (
	"fmt"
	"time"

	"repro/internal/arbiter"
	"repro/internal/dod"
	"repro/internal/mltask"
	"repro/internal/relation"
	"repro/internal/wtp"
)

// Platform is one buyer's view onto the market.
type Platform struct {
	Name    string
	Arbiter *arbiter.Arbiter
}

// New creates a buyer platform.
func New(name string, a *arbiter.Arbiter) *Platform {
	return &Platform{Name: name, Arbiter: a}
}

// Builder assembles a WTP-function fluently. Zero-config defaults: coverage
// task over the wanted columns, single-point price curve.
type Builder struct {
	platform *Platform
	want     dod.Want
	fn       wtp.Function
	err      error
}

// Need starts a request for the given target columns.
func (p *Platform) Need(columns ...string) *Builder {
	b := &Builder{platform: p}
	b.want.Columns = columns
	b.fn.Buyer = p.Name
	return b
}

// Alias accepts alternate source names for a wanted column.
func (b *Builder) Alias(column string, alternates ...string) *Builder {
	if b.want.Aliases == nil {
		b.want.Aliases = map[string][]string{}
	}
	b.want.Aliases[column] = append(b.want.Aliases[column], alternates...)
	return b
}

// ForClassifier sets the task: train the model on features predicting label;
// satisfaction is held-out accuracy (the paper's running example).
func (b *Builder) ForClassifier(model mltask.ModelKind, features []string, label string, seed int64) *Builder {
	b.fn.Task = wtp.ClassifierTask{Spec: mltask.ClassifierTask{
		Features: features, Label: label, Model: model, Seed: seed}}
	return b
}

// ForCoverage sets a relational completeness task.
func (b *Builder) ForCoverage(wantRows int) *Builder {
	b.fn.Task = wtp.CoverageTask{Columns: b.want.Columns, WantRows: wantRows}
	return b
}

// ForTask sets a custom task.
func (b *Builder) ForTask(t wtp.Task) *Builder {
	b.fn.Task = t
	return b
}

// PayingAt adds a price-curve point: pay `price` once satisfaction reaches
// `minSat` ("$100 at 80% accuracy, $150 beyond 90%").
func (b *Builder) PayingAt(minSat, price float64) *Builder {
	b.fn.Curve = append(b.fn.Curve, wtp.CurvePoint{MinSatisfaction: minSat, Price: price})
	return b
}

// TrueValueAt records the buyer's private valuation (for simulation and
// regret accounting); strategic buyers may bid below it.
func (b *Builder) TrueValueAt(minSat, value float64) *Builder {
	b.fn.TrueValue = append(b.fn.TrueValue, wtp.CurvePoint{MinSatisfaction: minSat, Price: value})
	return b
}

// ForPurpose declares the intended use of the data; the arbiter's
// contextual-integrity policy checks every dataset flow against it (§4.4).
func (b *Builder) ForPurpose(purpose string) *Builder {
	b.fn.Purpose = purpose
	return b
}

// FreshWithin requires all contributing datasets updated within d.
func (b *Builder) FreshWithin(d time.Duration) *Builder {
	b.fn.Constraints.MaxAge = d
	return b
}

// RequireProvenance demands lineage info from all sources.
func (b *Builder) RequireProvenance() *Builder {
	b.fn.Constraints.RequireProvenance = true
	return b
}

// FromAuthors restricts dataset authorship.
func (b *Builder) FromAuthors(authors ...string) *Builder {
	b.fn.Constraints.AllowedAuthors = append(b.fn.Constraints.AllowedAuthors, authors...)
	return b
}

// MinRows requires at least n mashup rows.
func (b *Builder) MinRows(n int) *Builder {
	b.fn.Constraints.MinRows = n
	b.want.MinRows = n
	return b
}

// Owning attaches data the buyer already has; it is blended into candidate
// mashups before satisfaction is measured and is never paid for.
func (b *Builder) Owning(r *relation.Relation) *Builder {
	b.fn.Owned = r
	return b
}

// Submit files the request with the arbiter and returns its ID.
func (b *Builder) Submit() (string, error) {
	if b.err != nil {
		return "", b.err
	}
	if b.fn.Task == nil {
		b.fn.Task = wtp.CoverageTask{Columns: b.want.Columns, WantRows: 1}
	}
	if len(b.fn.Curve) == 0 {
		return "", fmt.Errorf("buyer %s: no price curve; call PayingAt", b.platform.Name)
	}
	return b.platform.Arbiter.SubmitRequest(b.want, &b.fn)
}

// Function exposes the built WTP-function (for tests and simulation).
func (b *Builder) Function() *wtp.Function { return &b.fn }

// Want exposes the built target schema.
func (b *Builder) Want() dod.Want { return b.want }

// Purchases returns the buyer's completed transactions.
func (p *Platform) Purchases() []*arbiter.Transaction {
	var out []*arbiter.Transaction
	for _, tx := range p.Arbiter.History() {
		if tx.Buyer == p.Name {
			out = append(out, tx)
		}
	}
	return out
}

// Balance returns the buyer's remaining funds.
func (p *Platform) Balance() float64 {
	return p.Arbiter.Ledger.Balance(p.Name).Float()
}

// ReportValue settles an ex-post purchase: the buyer used the data,
// discovered its value, and reports it. Truthful reporting passes
// reported == trueValue; the arbiter's audits make that the best strategy.
func (p *Platform) ReportValue(txID string, reported, trueValue float64) (float64, error) {
	return p.Arbiter.ReportValue(txID, reported, trueValue)
}
