package index

import (
	"fmt"
	"testing"

	"repro/internal/profile"
	"repro/internal/relation"
)

// mkProfiles builds three datasets: orders(order_id, cust_id, total),
// customers(cust_id, name), weather(day, temp) — orders.cust_id and
// customers.cust_id share content.
func mkProfiles() []*profile.DatasetProfile {
	orders := relation.New("orders", relation.NewSchema(
		relation.Col("order_id", relation.KindInt),
		relation.Col("cust_id", relation.KindInt),
		relation.Col("total", relation.KindFloat),
	))
	customers := relation.New("customers", relation.NewSchema(
		relation.Col("cust_id", relation.KindInt),
		relation.Col("name", relation.KindString),
	))
	weather := relation.New("weather", relation.NewSchema(
		relation.Col("day", relation.KindString),
		relation.Col("temp", relation.KindFloat),
	))
	for i := 0; i < 200; i++ {
		orders.MustAppend(relation.Int(int64(i)), relation.Int(int64(i%50)), relation.Float(float64(i)*1.5))
	}
	for i := 0; i < 50; i++ {
		customers.MustAppend(relation.Int(int64(i)), relation.String_(fmt.Sprintf("cust%d", i)))
	}
	days := []string{"mon", "tue", "wed"}
	for i := 0; i < 30; i++ {
		weather.MustAppend(relation.String_(days[i%3]), relation.Float(float64(10+i%5)))
	}
	return []*profile.DatasetProfile{
		profile.Profile("orders", orders),
		profile.Profile("customers", customers),
		profile.Profile("weather", weather),
	}
}

func TestBuildFindsJoinEdge(t *testing.T) {
	ix := Build(DefaultConfig(), mkProfiles())
	edges := ix.Edges()
	found := false
	for _, e := range edges {
		cols := map[string]bool{e.A.Dataset + "." + e.A.Column: true, e.B.Dataset + "." + e.B.Column: true}
		if cols["orders.cust_id"] && cols["customers.cust_id"] {
			found = true
			if e.Containment < 0.5 {
				t.Errorf("cust_id containment = %v, want high (customers ⊆ orders keys)", e.Containment)
			}
		}
	}
	if !found {
		t.Fatalf("join edge orders.cust_id ↔ customers.cust_id not found in %d edges", len(edges))
	}
}

func TestExhaustiveMatchesLSHOnStrongEdges(t *testing.T) {
	profiles := mkProfiles()
	cfgLSH := DefaultConfig()
	cfgEx := DefaultConfig()
	cfgEx.Exhaustive = true
	lsh := Build(cfgLSH, profiles)
	ex := Build(cfgEx, profiles)
	// Every strong edge (jaccard >= 0.5) found exhaustively must be found by
	// LSH too (with 16 bands of 4 rows, P[detect | j=0.5] ≈ 1-(1-0.0625)^16 ≈ 0.64
	// per band row group — in practice identical columns always collide).
	for _, e := range ex.Edges() {
		if e.Jaccard < 0.9 {
			continue
		}
		ok := false
		for _, le := range lsh.Edges() {
			if le.A == e.A && le.B == e.B || le.A == e.B && le.B == e.A {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("LSH missed near-identical edge %v <-> %v (j=%.2f)", e.A, e.B, e.Jaccard)
		}
	}
}

func TestNoSelfEdges(t *testing.T) {
	ix := Build(DefaultConfig(), mkProfiles())
	for _, e := range ix.Edges() {
		if e.A.Dataset == e.B.Dataset {
			t.Errorf("self edge %v <-> %v", e.A, e.B)
		}
	}
}

func TestKindMatching(t *testing.T) {
	ix := Build(DefaultConfig(), mkProfiles())
	for _, e := range ix.Edges() {
		pa := ix.Profile(e.A.Dataset).Column(e.A.Column)
		pb := ix.Profile(e.B.Dataset).Column(e.B.Column)
		num := func(k relation.Kind) bool { return k == relation.KindInt || k == relation.KindFloat }
		if pa.Kind != pb.Kind && !(num(pa.Kind) && num(pb.Kind)) {
			t.Errorf("edge between incompatible kinds %v/%v", pa.Kind, pb.Kind)
		}
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"cust_id", []string{"cust", "id"}},
		{"CustomerName", []string{"customer", "name"}},
		{"temp-f", []string{"temp", "f"}},
		{"abc123", []string{"abc123"}},
		{"", nil},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestLookup(t *testing.T) {
	ix := Build(DefaultConfig(), mkProfiles())
	refs := ix.Lookup("cust")
	if len(refs) < 2 {
		t.Fatalf("lookup(cust) = %v, want orders+customers columns", refs)
	}
	if len(ix.Lookup("zzz_nothing")) != 0 {
		t.Error("unknown token must return nothing")
	}
}

func TestIncrementalAdd(t *testing.T) {
	profiles := mkProfiles()
	ix := Build(DefaultConfig(), profiles[:2])
	before := ix.NumEdges()
	ix.Add(profiles[2]) // weather: unrelated, should not add cust edges
	if len(ix.Datasets()) != 3 {
		t.Errorf("datasets = %v", ix.Datasets())
	}
	// Re-add an updated version of customers: no duplicate edges.
	ix.Add(profiles[1])
	if got := ix.NumEdges(); got < before {
		t.Errorf("edges dropped after re-add: %d < %d", got, before)
	}
	for _, e := range ix.Edges() {
		if e.A.Dataset == e.B.Dataset {
			t.Error("self edge after incremental add")
		}
	}
}

func TestEdgesFor(t *testing.T) {
	ix := Build(DefaultConfig(), mkProfiles())
	for _, e := range ix.EdgesFor("orders") {
		if e.A.Dataset != "orders" && e.B.Dataset != "orders" {
			t.Errorf("EdgesFor(orders) returned foreign edge %v", e)
		}
	}
	if len(ix.EdgesFor("ghost")) != 0 {
		t.Error("unknown dataset has no edges")
	}
}
