// Package index implements the Index Builder of the Mashup Builder (paper
// §5.2): it "processes the output schema produced by the metadata engine and
// shapes data so it can be consumed by the dataset-on-demand engine. Among
// other tasks, the index builder materializes join paths between files, and
// it identifies candidate functions to map attributes to each other."
//
// Three index structures are built from column profiles:
//
//   - an inverted token index over column names and frequent values, used by
//     keyword discovery;
//   - LSH buckets over MinHash sketches, used to prune the quadratic
//     pairwise column-similarity search (ablation E6);
//   - the join graph: scored (dataset, column)↔(dataset, column) edges with
//     estimated Jaccard and containment, the raw material for DoD join-path
//     enumeration.
package index

import (
	"sort"
	"strings"

	"repro/internal/profile"
	"repro/internal/relation"
)

// ColRef names a column within a dataset.
type ColRef struct {
	Dataset string
	Column  string
}

// JoinEdge is a candidate join between two columns, scored by estimated set
// overlap of their contents.
type JoinEdge struct {
	A, B        ColRef
	Jaccard     float64
	Containment float64 // max of A-in-B, B-in-A
}

// Config controls index construction.
type Config struct {
	// MinJaccard is the similarity threshold for keeping a join edge.
	MinJaccard float64
	// LSHBands partitions the MinHash sketch into bands; columns sharing any
	// band bucket become comparison candidates. More bands = more recall.
	LSHBands int
	// Exhaustive disables LSH pruning and compares all column pairs — the
	// baseline for the LSH ablation bench.
	Exhaustive bool
	// RequireKindMatch keeps only edges between same-kind columns.
	RequireKindMatch bool
	// MinDistinct drops join edges touching low-cardinality columns:
	// booleans and tiny enums always look identical under MinHash but make
	// catastrophic join keys.
	MinDistinct int
}

// DefaultConfig returns the settings used by the platform.
func DefaultConfig() Config {
	return Config{MinJaccard: 0.1, LSHBands: 16, RequireKindMatch: true, MinDistinct: 8}
}

// Index is the built structure.
type Index struct {
	cfg      Config
	profiles map[string]*profile.DatasetProfile
	tokens   map[string][]ColRef // token -> columns mentioning it
	edges    []JoinEdge
	byCol    map[ColRef][]int // column -> edge indices
}

// Build constructs the index from the dataset profiles.
func Build(cfg Config, profiles []*profile.DatasetProfile) *Index {
	ix := &Index{
		cfg:      cfg,
		profiles: map[string]*profile.DatasetProfile{},
		tokens:   map[string][]ColRef{},
		byCol:    map[ColRef][]int{},
	}
	for _, dp := range profiles {
		ix.profiles[dp.Dataset] = dp
	}
	ix.buildTokens(profiles)
	ix.buildJoinGraph(profiles)
	return ix
}

// Add incrementally indexes one more dataset profile, comparing its columns
// against all existing ones. The metadata engine is always-on (paper §5.1);
// Add is the hook it calls after re-profiling a changed dataset.
func (ix *Index) Add(dp *profile.DatasetProfile) {
	if _, ok := ix.profiles[dp.Dataset]; ok {
		ix.remove(dp.Dataset)
	}
	existing := ix.allProfiles()
	ix.profiles[dp.Dataset] = dp
	ix.indexTokens(dp)
	for i := range dp.Columns {
		a := &dp.Columns[i]
		for _, other := range existing {
			for j := range other.Columns {
				ix.tryEdge(a, &other.Columns[j])
			}
		}
	}
}

func (ix *Index) remove(dataset string) {
	delete(ix.profiles, dataset)
	for tok, refs := range ix.tokens {
		out := refs[:0]
		for _, r := range refs {
			if r.Dataset != dataset {
				out = append(out, r)
			}
		}
		ix.tokens[tok] = out
	}
	var kept []JoinEdge
	for _, e := range ix.edges {
		if e.A.Dataset != dataset && e.B.Dataset != dataset {
			kept = append(kept, e)
		}
	}
	ix.edges = kept
	ix.byCol = map[ColRef][]int{}
	for i, e := range ix.edges {
		ix.byCol[e.A] = append(ix.byCol[e.A], i)
		ix.byCol[e.B] = append(ix.byCol[e.B], i)
	}
}

func (ix *Index) allProfiles() []*profile.DatasetProfile {
	out := make([]*profile.DatasetProfile, 0, len(ix.profiles))
	for _, dp := range ix.profiles {
		out = append(out, dp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dataset < out[j].Dataset })
	return out
}

// Tokenize splits an identifier or value into lowercase tokens on non-alnum
// boundaries and camelCase humps.
func Tokenize(s string) []string {
	var out []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			out = append(out, strings.ToLower(string(cur)))
			cur = cur[:0]
		}
	}
	prevLower := false
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			cur = append(cur, r)
			prevLower = true
		case r >= 'A' && r <= 'Z':
			if prevLower {
				flush()
			}
			cur = append(cur, r+('a'-'A'))
			prevLower = false
		default:
			flush()
			prevLower = false
		}
	}
	flush()
	return out
}

func (ix *Index) buildTokens(profiles []*profile.DatasetProfile) {
	for _, dp := range profiles {
		ix.indexTokens(dp)
	}
}

func (ix *Index) indexTokens(dp *profile.DatasetProfile) {
	for i := range dp.Columns {
		cp := &dp.Columns[i]
		ref := ColRef{dp.Dataset, cp.Column}
		seen := map[string]bool{}
		add := func(tok string) {
			if tok == "" || seen[tok] {
				return
			}
			seen[tok] = true
			ix.tokens[tok] = append(ix.tokens[tok], ref)
		}
		for _, tok := range Tokenize(cp.Column) {
			add(tok)
		}
		add(strings.ToLower(cp.Column))
		for _, v := range cp.TopValues {
			for _, tok := range Tokenize(v) {
				add(tok)
			}
		}
	}
}

func (ix *Index) buildJoinGraph(profiles []*profile.DatasetProfile) {
	type colEntry struct {
		dp *profile.DatasetProfile
		ci int
	}
	var cols []colEntry
	for _, dp := range profiles {
		for i := range dp.Columns {
			cols = append(cols, colEntry{dp, i})
		}
	}
	if ix.cfg.Exhaustive {
		for i := 0; i < len(cols); i++ {
			for j := i + 1; j < len(cols); j++ {
				ix.tryEdge(&cols[i].dp.Columns[cols[i].ci], &cols[j].dp.Columns[cols[j].ci])
			}
		}
		return
	}
	// LSH: columns sharing any band bucket are candidates.
	bands := ix.cfg.LSHBands
	if bands <= 0 {
		bands = 16
	}
	rows := profile.MinHashSize / bands
	if rows < 1 {
		rows = 1
	}
	buckets := map[uint64][]int32{}
	for idx, ce := range cols {
		cp := &ce.dp.Columns[ce.ci]
		for b := 0; b < bands; b++ {
			key := bandKey(cp.Sketch, b, rows)
			buckets[key] = append(buckets[key], int32(idx))
		}
	}
	seen := map[uint64]bool{}
	for _, members := range buckets {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				if a > b {
					a, b = b, a
				}
				pair := uint64(a)<<32 | uint64(uint32(b))
				if seen[pair] {
					continue
				}
				seen[pair] = true
				ix.tryEdge(&cols[a].dp.Columns[cols[a].ci], &cols[b].dp.Columns[cols[b].ci])
			}
		}
	}
}

// bandKey mixes one band of the sketch into a 64-bit bucket key.
func bandKey(m profile.MinHash, band, rows int) uint64 {
	h := uint64(band)*0x9e3779b97f4a7c15 + 0x517cc1b727220a95
	for i := band * rows; i < (band+1)*rows && i < profile.MinHashSize; i++ {
		h ^= m[i]
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return h
}

func (ix *Index) tryEdge(a, b *profile.ColumnProfile) {
	if a.Dataset == b.Dataset {
		return
	}
	if ix.cfg.RequireKindMatch && !kindsJoinable(a, b) {
		return
	}
	if a.Distinct < ix.cfg.MinDistinct || b.Distinct < ix.cfg.MinDistinct {
		return
	}
	j := a.Sketch.Jaccard(b.Sketch)
	if j < ix.cfg.MinJaccard {
		return
	}
	cab := profile.ContainmentEstimate(a, b)
	cba := profile.ContainmentEstimate(b, a)
	c := cab
	if cba > c {
		c = cba
	}
	e := JoinEdge{
		A:           ColRef{a.Dataset, a.Column},
		B:           ColRef{b.Dataset, b.Column},
		Jaccard:     j,
		Containment: c,
	}
	i := len(ix.edges)
	ix.edges = append(ix.edges, e)
	ix.byCol[e.A] = append(ix.byCol[e.A], i)
	ix.byCol[e.B] = append(ix.byCol[e.B], i)
}

func kindsJoinable(a, b *profile.ColumnProfile) bool {
	num := func(k relation.Kind) bool { return k == relation.KindInt || k == relation.KindFloat }
	return a.Kind == b.Kind || (num(a.Kind) && num(b.Kind))
}

// Edges returns all join edges sorted by descending Jaccard.
func (ix *Index) Edges() []JoinEdge {
	out := make([]JoinEdge, len(ix.edges))
	copy(out, ix.edges)
	sort.Slice(out, func(i, j int) bool { return out[i].Jaccard > out[j].Jaccard })
	return out
}

// EdgesFor returns the join edges touching any column of the dataset.
func (ix *Index) EdgesFor(dataset string) []JoinEdge {
	var out []JoinEdge
	for _, e := range ix.edges {
		if e.A.Dataset == dataset || e.B.Dataset == dataset {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Jaccard > out[j].Jaccard })
	return out
}

// Lookup returns columns whose name or frequent values mention the token.
func (ix *Index) Lookup(token string) []ColRef {
	refs := ix.tokens[strings.ToLower(token)]
	out := make([]ColRef, len(refs))
	copy(out, refs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dataset != out[j].Dataset {
			return out[i].Dataset < out[j].Dataset
		}
		return out[i].Column < out[j].Column
	})
	return out
}

// Profile returns the stored profile for a dataset (nil when unknown).
func (ix *Index) Profile(dataset string) *profile.DatasetProfile {
	return ix.profiles[dataset]
}

// Datasets returns all indexed dataset IDs, sorted.
func (ix *Index) Datasets() []string {
	out := make([]string, 0, len(ix.profiles))
	for d := range ix.profiles {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// NumEdges returns the size of the join graph.
func (ix *Index) NumEdges() int { return len(ix.edges) }
