package policy

import "testing"

func TestDefaultEffect(t *testing.T) {
	open := NewEngine(Allow)
	if !open.Check(Flow{Dataset: "d", Receiver: "b"}).Allowed {
		t.Error("open engine defaults allow")
	}
	closed := NewEngine(Deny)
	if closed.Check(Flow{Dataset: "d", Receiver: "b"}).Allowed {
		t.Error("closed engine defaults deny")
	}
}

func TestSpecificityWins(t *testing.T) {
	e := NewEngine(Deny)
	// Broad allow for research, narrow deny for one receiver.
	if err := e.AddNorm(Norm{Purpose: PurposeResearch, Effect: Allow, Reason: "research ok"}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddNorm(Norm{Purpose: PurposeResearch, Receiver: "evilcorp", Effect: Deny, Reason: "banned"}); err != nil {
		t.Fatal(err)
	}
	ok := e.Check(Flow{Dataset: "d", Receiver: "lab", Purpose: PurposeResearch})
	if !ok.Allowed {
		t.Errorf("research by lab must pass: %+v", ok)
	}
	banned := e.Check(Flow{Dataset: "d", Receiver: "evilcorp", Purpose: PurposeResearch})
	if banned.Allowed {
		t.Error("specific deny must override broad allow")
	}
	if banned.Reason != "banned" {
		t.Errorf("reason = %q", banned.Reason)
	}
}

func TestTieBreaksDeny(t *testing.T) {
	e := NewEngine(Allow)
	_ = e.AddNorm(Norm{Purpose: PurposeMarketing, Effect: Allow})
	_ = e.AddNorm(Norm{Purpose: PurposeMarketing, Effect: Deny, Reason: "conflict"})
	if e.Check(Flow{Purpose: PurposeMarketing}).Allowed {
		t.Error("equal-specificity conflict must fail closed")
	}
}

func TestEmptyNormRejected(t *testing.T) {
	e := NewEngine(Allow)
	if err := e.AddNorm(Norm{Effect: Deny}); err == nil {
		t.Error("norm constraining nothing must be rejected")
	}
}

func TestHealthcareDefaults(t *testing.T) {
	e := NewEngine(Deny)
	for _, n := range HealthcareDefaults("phi") {
		if err := e.AddNorm(n); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		purpose Purpose
		want    bool
	}{
		{PurposeHealthcare, true},
		{PurposeResearch, true},
		{PurposeMarketing, false},
		{PurposeResale, false},
		{PurposeOperations, false}, // no norm -> default deny
	}
	for _, c := range cases {
		got := e.Check(Flow{Dataset: "phi", Receiver: "hospitalB", Purpose: c.purpose})
		if got.Allowed != c.want {
			t.Errorf("purpose %q allowed=%v, want %v", c.purpose, got.Allowed, c.want)
		}
	}
	// Norms scoped to "phi" don't constrain other datasets.
	if e.Check(Flow{Dataset: "weather", Purpose: PurposeMarketing}).Allowed {
		t.Error("default deny applies to unscoped datasets")
	}
}

func TestDecisionLog(t *testing.T) {
	e := NewEngine(Allow)
	_ = e.AddNorm(Norm{Dataset: "d", Effect: Deny, Reason: "embargo"})
	e.Check(Flow{Dataset: "d"})
	e.Check(Flow{Dataset: "other"})
	log := e.Decisions()
	if len(log) != 2 {
		t.Fatalf("log = %d entries", len(log))
	}
	if log[0].Allowed || !log[1].Allowed {
		t.Errorf("log verdicts = %v %v", log[0].Allowed, log[1].Allowed)
	}
}

func TestRecipientClassMatch(t *testing.T) {
	e := NewEngine(Deny)
	_ = e.AddNorm(Norm{Recipient: "hospital", Effect: Allow, Reason: "peer exchange"})
	if !e.Check(Flow{Dataset: "d", Recipient: "hospital"}).Allowed {
		t.Error("hospital class must pass")
	}
	if e.Check(Flow{Dataset: "d", Recipient: "adtech"}).Allowed {
		t.Error("other classes fall to default deny")
	}
}
