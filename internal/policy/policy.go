// Package policy implements a software rendering of contextual integrity
// (paper §4.4: "we are exploring software implementations of contextual
// integrity, which we believe may be an interesting vehicle to enable data
// licensing"). Contextual integrity judges an information flow by its
// context: sender, receiver, subject, information type, and transmission
// principle. Here a dataset carries context norms; the arbiter checks every
// prospective delivery (dataset -> buyer for a purpose) against them before
// a transaction is allowed.
package policy

import (
	"fmt"
	"sync"
)

// Purpose is the declared use of the data.
type Purpose string

// Common purposes.
const (
	PurposeResearch    Purpose = "research"
	PurposeMarketing   Purpose = "marketing"
	PurposeOperations  Purpose = "operations"
	PurposeHealthcare  Purpose = "healthcare"
	PurposeResale      Purpose = "resale"
	PurposeUnspecified Purpose = ""
)

// Flow describes one prospective information transfer.
type Flow struct {
	Dataset   string
	Sender    string // data owner
	Receiver  string // buyer
	Purpose   Purpose
	Recipient string // receiving organization class, e.g. "hospital"
}

// Effect is a norm's verdict.
type Effect int

// Norm effects.
const (
	Allow Effect = iota
	Deny
)

// Norm is one contextual rule: it matches flows by any non-empty field and
// applies its effect. More specific norms (more matched fields) take
// priority; among equals, Deny wins (fail closed).
type Norm struct {
	Dataset   string
	Receiver  string
	Purpose   Purpose
	Recipient string
	Effect    Effect
	Reason    string
}

func (n Norm) matches(f Flow) (bool, int) {
	spec := 0
	if n.Dataset != "" {
		if n.Dataset != f.Dataset {
			return false, 0
		}
		spec++
	}
	if n.Receiver != "" {
		if n.Receiver != f.Receiver {
			return false, 0
		}
		spec++
	}
	if n.Purpose != PurposeUnspecified {
		if n.Purpose != f.Purpose {
			return false, 0
		}
		spec++
	}
	if n.Recipient != "" {
		if n.Recipient != f.Recipient {
			return false, 0
		}
		spec++
	}
	return true, spec
}

// Engine evaluates flows against registered norms.
type Engine struct {
	mu    sync.RWMutex
	norms []Norm
	// DefaultEffect applies when no norm matches. Markets of sensitive data
	// should fail closed (Deny); open markets default Allow.
	DefaultEffect Effect
	log           []Decision
}

// Decision is an audited policy verdict.
type Decision struct {
	Flow    Flow
	Allowed bool
	Reason  string
}

// NewEngine creates a policy engine with the given default.
func NewEngine(def Effect) *Engine {
	return &Engine{DefaultEffect: def}
}

// AddNorm registers a norm. Norms with no constrained field are rejected —
// they would silently override the default.
func (e *Engine) AddNorm(n Norm) error {
	if n.Dataset == "" && n.Receiver == "" && n.Purpose == PurposeUnspecified && n.Recipient == "" {
		return fmt.Errorf("policy: norm constrains nothing; set the engine default instead")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.norms = append(e.norms, n)
	return nil
}

// Check evaluates a flow: the most specific matching norm decides; at equal
// specificity Deny beats Allow; with no match the default applies. Every
// decision is logged for transparency (§4.4).
func (e *Engine) Check(f Flow) Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	bestSpec := -1
	verdict := e.DefaultEffect
	reason := "default"
	for _, n := range e.norms {
		ok, spec := n.matches(f)
		if !ok {
			continue
		}
		switch {
		case spec > bestSpec:
			bestSpec, verdict, reason = spec, n.Effect, n.Reason
		case spec == bestSpec && n.Effect == Deny && verdict == Allow:
			verdict, reason = Deny, n.Reason
		}
	}
	d := Decision{Flow: f, Allowed: verdict == Allow, Reason: reason}
	e.log = append(e.log, d)
	return d
}

// Decisions returns the audit trail of policy checks.
func (e *Engine) Decisions() []Decision {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]Decision, len(e.log))
	copy(out, e.log)
	return out
}

// HealthcareDefaults returns norms resembling a hospital data-exchange
// coalition (§3.3 barter markets): healthcare purposes flow, marketing and
// resale never do.
func HealthcareDefaults(dataset string) []Norm {
	return []Norm{
		{Dataset: dataset, Purpose: PurposeHealthcare, Effect: Allow, Reason: "care coordination"},
		{Dataset: dataset, Purpose: PurposeResearch, Effect: Allow, Reason: "IRB research"},
		{Dataset: dataset, Purpose: PurposeMarketing, Effect: Deny, Reason: "PHI cannot be marketed"},
		{Dataset: dataset, Purpose: PurposeResale, Effect: Deny, Reason: "PHI cannot be resold"},
	}
}
