package federation

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/relation"
)

// HomeOf maps a participant name to its home shard: the shard that owns the
// participant's ledger account and intake. It is the same FNV-1a hash the
// engine uses for intake queues, so a `-shards 1` federation routes exactly
// like a bare engine.
func HomeOf(participant string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(participant))
	return int(h.Sum32() % uint32(shards))
}

// shardTicket prefixes a shard-local ticket or transaction ID with its shard
// ("s2:sub-000017"), making IDs unique at the federation surface — every
// shard numbers its own tickets from 1.
func shardTicket(shard int, id string) string {
	return fmt.Sprintf("s%d:%s", shard, id)
}

// ShardID is the exported form of the federation's ID scheme: it prefixes a
// shard-local ticket or transaction ID with its shard ("s2:tx-000017"). The
// gateway uses it to present per-shard views (events, settlements) under the
// same IDs the routing surface hands out.
func ShardID(shard int, id string) string { return shardTicket(shard, id) }

// splitShardID parses a "s<i>:<id>" federation ID back into its shard and
// local form. ok is false for coordinator tickets ("x:...") and bare IDs.
func splitShardID(id string) (shard int, local string, ok bool) {
	if len(id) < 3 || id[0] != 's' {
		return 0, "", false
	}
	colon := strings.IndexByte(id, ':')
	if colon < 2 {
		return 0, "", false
	}
	n, err := strconv.Atoi(id[1:colon])
	if err != nil || n < 0 {
		return 0, "", false
	}
	return n, id[colon+1:], true
}

// router is the federation's column-coverage index: which shards hold a
// dataset carrying each column name. It decides, per want, whether the
// buyer's home shard can clear it alone or the want must go to the
// cross-shard coordinator. The index is advisory routing state, not ground
// truth — it is rebuilt from the shard catalogs at Open and updated
// optimistically at share time (a share applies at its shard's next epoch;
// routing a want by a column that is still in intake just means the want
// waits open at its home shard a little longer, exactly like a single
// market). Transform-derived columns are invisible here, so wants for them
// stay at the home shard, where the DoD engine's transforms live.
type router struct {
	shards int

	mu   sync.RWMutex
	cols map[string]map[int]bool // column name -> shards carrying it
}

func newRouter(shards int) *router {
	return &router{shards: shards, cols: map[string]map[int]bool{}}
}

// addColumns records that a shard holds a dataset with these columns.
func (r *router) addColumns(shard int, names []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range names {
		set := r.cols[n]
		if set == nil {
			set = map[int]bool{}
			r.cols[n] = set
		}
		set[shard] = true
	}
}

// addRelation indexes a shared relation's schema for a shard.
func (r *router) addRelation(shard int, rel *relation.Relation) {
	if rel == nil {
		return
	}
	r.addColumns(shard, rel.Schema.Names())
}

// seedFromShard rebuilds a shard's slice of the index from its catalog (used
// at Open, after recovery replayed the shard's WAL).
func (r *router) seedFromShard(shard int, states []core.DatasetState) {
	for _, d := range states {
		r.addRelation(shard, d.Relation)
	}
}

// colOnShard reports whether col (or one of its aliases) is indexed on the
// shard.
func (r *router) colOnShard(col string, aliases []string, shard int) bool {
	if r.cols[col][shard] {
		return true
	}
	for _, a := range aliases {
		if r.cols[a][shard] {
			return true
		}
	}
	return false
}

// colAnywhere reports whether col (or an alias) is indexed on any shard
// other than home.
func (r *router) colElsewhere(col string, aliases []string, home int) bool {
	for s := range r.cols[col] {
		if s != home {
			return true
		}
	}
	for _, a := range aliases {
		for s := range r.cols[a] {
			if s != home {
				return true
			}
		}
	}
	return false
}

// spans decides whether a want must go to the cross-shard coordinator: true
// when some wanted column is missing from the home shard's catalog but
// present on another shard. Wants whose missing columns are unknown
// everywhere stay home — local transforms may yet derive them, and keeping
// them at the home shard preserves its unmet-demand signals.
func (r *router) spans(want dod.Want, home int) bool {
	if r.shards <= 1 {
		return false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, col := range want.Columns {
		aliases := want.Aliases[col]
		if r.colOnShard(col, aliases, home) {
			continue
		}
		if r.colElsewhere(col, aliases, home) {
			return true
		}
	}
	return false
}
