// Package federation shards the market itself.
//
// A single arbiter — one platform, one engine, one WAL — serializes every
// epoch. Federation runs N of them side by side and puts a router in front:
//
//	                        ┌────────────────────────────┐
//	 SubmitRegister ───────▶│          router            │
//	 SubmitShare    ───────▶│  HomeOf(participant) hash  │
//	 SubmitRequest  ───────▶│  + column-coverage index   │
//	                        └───┬─────────┬──────────┬───┘
//	                            │         │          │ spans shards?
//	                       ┌────▼───┐ ┌───▼────┐ ┌───▼──────────┐
//	                       │shard 0 │ │shard 1 │ │ coordinator  │
//	                       │engine  │ │engine  │ │ queue + 2PC  │
//	                       │platform│ │platform│ └───┬──────┬───┘
//	                       │WAL dir │ │WAL dir │     │      │
//	                       └────────┘ └────────┘  coord.log │
//	                         parallel epochs         escrow legs as
//	                         per-shard snapshots     shard WAL events
//
//	// Each shard is a complete market: its own catalog slice, ledger, event
//	// log, WAL directory and snapshot lineage. Shards never talk to each
//	// other — only the coordinator touches more than one.
//
// # Sharding
//
// Participants hash to a home shard (FNV-1a of the name, the same hash the
// engine uses for intake queues). A seller's datasets live on the seller's
// home shard; a buyer's funds and requests live on the buyer's. Epochs run
// per shard, concurrently — the perf point of the whole layer: N shards
// drain, apply, build and match in parallel, and `-shards 1` degrades to
// exactly the single-arbiter behavior (same hash, same order, same bytes).
//
// # Routing
//
// The router keeps a column-coverage index (column name → shards whose
// catalogs carry it). A want whose columns all resolve on the buyer's home
// shard is an ordinary home-shard request. A want with some column missing
// at home but present on another shard "spans" — no single shard can clear
// it — and goes to the cross-shard coordinator instead. Columns unknown
// everywhere stay home: local transforms may yet derive them, and the home
// shard's unmet-demand signals should see them.
//
// # Cross-shard settlement (escrow-style 2PC)
//
// The coordinator matches a spanning want on a scratch platform mirroring
// every shard's catalog (buyer funded with their real home balance), then
// settles the winning mashup with a two-phase commit whose participant legs
// are ordinary engine events in each shard's WAL, and whose decisions live
// in the coordinator's own log (coord.log, JSON lines, fsync per append):
//
//	begin(coord) → prepare: home shard escrows the price (xtx-prepared)
//	→ decide(coord) → commit home: escrow pays arbiter cut + local seller
//	cuts, remote cuts withdrawn (xtx-committed, role=home) → commit
//	remotes: each remote shard deposits its sellers' cuts (xtx-committed,
//	role=remote) → want-done(coord) → done(coord)
//
// The withdraw/deposit pair moves value between shard ledgers while the
// federation-wide total supply stays conserved — micro-unit exact, because
// both sides sum the identical per-cut conversions. Every leg is
// idempotent, so recovery re-drives decided transactions safely: undecided
// at boot → presumed abort (escrow refunded, want retried under a fresh
// xid); decided-commit → re-drive all legs; decided-abort → finish the
// abort. No coordinator state exists outside the two logs.
//
// # Snapshots
//
// Each shard snapshots and prunes independently (same lineage rules as a
// single market). Market.SnapshotAll takes the coordinator mutex first, so
// no shard is ever captured mid-2PC; the engine additionally refuses to
// snapshot while any escrow is in flight, making the invariant local too.
//
// # Observability
//
// All shards share one registry: unlabeled histogram families aggregate
// across shards by construction, per-shard views carry a `shard` label
// under dedicated engine_shard_* names, and the federation registers the
// process-wide sampled families once, summed (see engine.Config.ShardLabel).
package federation
