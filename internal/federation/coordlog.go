package federation

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// The coordinator log is the federation's own durable record: pending
// cross-shard wants and the begin/decide/done lifecycle of every two-phase
// commit. It is deliberately NOT a shard WAL — shard WALs carry each shard's
// participant legs (xtx-prepared / xtx-committed / xtx-aborted events); this
// log carries only what no single shard can know: which transactions exist,
// what was decided, and which are finished. Recovery resolves in-doubt
// transactions from the two together, with no coordinator state outside the
// logs (see coordinator.go).
//
// Format: JSON lines, one record per line, fsynced per append (the
// coordinator settles rarely relative to shard epochs, so the sync cost is
// off the hot path). A torn final line — a crash mid-append — is ignored on
// recovery, exactly like the shard WAL's torn-tail rule: an unreadable
// record was by definition never acknowledged.

// Coordinator record types.
const (
	recWant     = "want"      // a cross-shard want entered the queue
	recWantDone = "want-done" // the want reached a terminal state
	recBegin    = "begin"     // a 2PC attempt started (full payload)
	recDecide   = "decide"    // the commit/abort decision is durable
	recDone     = "done"      // every leg has been applied
)

// coordRecord is one coordinator-log line. Fields are a union across types.
type coordRecord struct {
	Type   string `json:"type"`
	Ticket string `json:"ticket,omitempty"` // want / want-done / begin
	Xid    string `json:"xid,omitempty"`    // begin / decide / done
	// want
	Spec     *core.RequestSpec `json:"spec,omitempty"`
	Priority int               `json:"priority,omitempty"`
	// want-done
	Status string  `json:"status,omitempty"` // "done" | "failed"
	TxID   string  `json:"tx_id,omitempty"`
	Price  float64 `json:"price,omitempty"`
	Err    string  `json:"error,omitempty"`
	// begin: everything a re-drive needs without re-matching
	Buyer      string                        `json:"buyer,omitempty"`
	Home       int                           `json:"home,omitempty"`
	ArbiterCut float64                       `json:"arbiter_cut,omitempty"`
	CutsByShrd map[string]map[string]float64 `json:"cuts_by_shard,omitempty"` // shard index (decimal) -> seller -> cut
	Datasets   []string                      `json:"datasets,omitempty"`
	// decide
	Commit bool `json:"commit,omitempty"`
}

// coordLog is the append-only coordinator log. A nil *coordLog (in-memory
// federations) is valid: appends are no-ops and recovery sees nothing.
type coordLog struct {
	f    *os.File
	path string
}

func openCoordLog(dir string) (*coordLog, []coordRecord, error) {
	path := filepath.Join(dir, "coord.log")
	recs, err := scanCoordLog(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &coordLog{f: f, path: path}, recs, nil
}

// scanCoordLog reads every intact record; a torn (unparseable) final line is
// dropped, a torn line in the middle is an error (the log is append-only, so
// corruption before intact records means tampering or disk fault).
func scanCoordLog(path string) ([]coordRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []coordRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	torn := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r coordRecord
		if err := json.Unmarshal(line, &r); err != nil {
			torn = true
			continue
		}
		if torn {
			return nil, fmt.Errorf("federation: coord log %s: intact record after torn line", path)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// append durably writes one record (fsync before return). Nil-safe: an
// in-memory federation has no coordinator log and loses pending wants on
// exit, exactly like engine intake without a WAL.
func (l *coordLog) append(r coordRecord) error {
	if l == nil {
		return nil
	}
	buf, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if _, err := l.f.Write(append(buf, '\n')); err != nil {
		return err
	}
	return l.f.Sync()
}

func (l *coordLog) close() error {
	if l == nil {
		return nil
	}
	return l.f.Close()
}
