package federation

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ledger"
)

// TestFundsConservationProperty is the randomized counterpart of the
// exhaustive kill matrix: seeded sequences of cross-shard settles, each round
// either clean or killed at a randomly drawn 2PC boundary, all layered on ONE
// WAL lineage so every recovery replays the full history of earlier commits
// and aborts. The invariant: no interleaving of prepare/commit/abort and
// process death may mint or destroy money. After every recovery the
// federation-wide supply equals exactly what was deposited, every shard's
// audit chain verifies, no escrow is left in flight, and an aborted want
// retried under a fresh xid still settles without moving the supply.
func TestFundsConservationProperty(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(seed))

			// Every boundary appears at least once per seed; shuffled order plus
			// interleaved clean rounds ("") vary the history each kill lands on.
			points := []string{""}
			for _, kp := range killPoints {
				points = append(points, kp.point)
			}
			rnd.Shuffle(len(points), func(i, j int) { points[i], points[j] = points[j], points[i] })
			points = append(points, "", killPoints[rnd.Intn(len(killPoints))].point)

			dir := t.TempDir()
			var expected ledger.Currency
			deposit := func(m *Market, name string, funds float64) {
				mustTk(m.SubmitRegister(name, funds))
				expected += ledger.FromFloat(funds)
			}

			for round, point := range points {
				cfg := fedConfig(dir, 2)
				if point != "" {
					kill := point
					cfg.testCrash = func(p string) error {
						if p == kill {
							return fmt.Errorf("injected death at %s", p)
						}
						return nil
					}
				}
				m, err := Open(cfg)
				if err != nil {
					t.Fatalf("round %d open: %v", round, err)
				}

				// Fresh participants and globally fresh column names per round,
				// split so the want always spans shards 0 and 1.
				buyer := nameOn(t, fmt.Sprintf("pb%d-", round), 0, 2)
				sellA := nameOn(t, fmt.Sprintf("pa%d-", round), 0, 2)
				sellB := nameOn(t, fmt.Sprintf("ps%d-", round), 1, 2)
				deposit(m, buyer, 2000+float64(rnd.Intn(8))*500)
				deposit(m, sellA, float64(rnd.Intn(3))*100)
				deposit(m, sellB, float64(rnd.Intn(3))*100)
				left, right := fmt.Sprintf("pl%d", round), fmt.Sprintf("pr%d", round)
				openShare(t, m, sellA, sellA+"/d0", keyedRel(sellA+"/d0", left, 20))
				openShare(t, m, sellB, sellB+"/d0", keyedRel(sellB+"/d0", right, 30))
				m.TriggerEpoch()

				w, f := joinWant(buyer, 900, left, right)
				tk := mustTk(m.SubmitRequest(w, f))
				settled := m.CoordRound()
				if point == "" && settled != 1 {
					t.Fatalf("round %d clean settle count = %d", round, settled)
				}
				// Mid-flight (even mid-crash) the supply may dip while escrow is
				// in transit between ledgers, but money is never created.
				if got := m.TotalSupply(); got > expected {
					t.Fatalf("round %d (%s): live supply %v exceeds deposits %v", round, point, got, expected)
				}
				m.Stop()

				// Recover from the logs alone and audit the whole federation.
				m2, err := Open(fedConfig(dir, 2))
				if err != nil {
					t.Fatalf("round %d recovery: %v", round, err)
				}
				if got := m2.TotalSupply(); got != expected {
					t.Fatalf("round %d (%s): recovered supply %v, want %v", round, point, got, expected)
				}
				for _, sh := range m2.Shards() {
					if i := sh.Platform.Arbiter.Ledger.VerifyChain(); i >= 0 {
						t.Fatalf("round %d (%s): shard %d audit chain corrupt at %d", round, point, sh.Index, i)
					}
					if sh.Engine.XTxInFlight() != 0 {
						t.Fatalf("round %d (%s): shard %d escrow in flight after recovery", round, point, sh.Index)
					}
				}
				// A pre-decide kill presumed-abort; the want retries under a
				// fresh xid and the retry must not move the supply either.
				if pending, _, _ := m2.CoordStats(); pending > 0 {
					if n := m2.CoordRound(); n != pending {
						t.Fatalf("round %d (%s): retry settled %d of %d pending", round, point, n, pending)
					}
					if got := m2.TotalSupply(); got != expected {
						t.Fatalf("round %d (%s): supply %v after retry, want %v", round, point, got, expected)
					}
				}
				if tkv, ok := m2.Ticket(tk); !ok || !tkv.Status.Terminal() {
					t.Fatalf("round %d (%s): want %s not terminal after recovery: %+v", round, point, tk, tkv)
				}
				m2.Stop()
			}
		})
	}
}
