package federation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/arbiter"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/engine"
	"repro/internal/license"
	"repro/internal/wtp"
)

// coordinator clears the wants no single shard can: requests whose wanted
// columns span shard catalogs. It keeps a durable queue of such wants (the
// coordinator log), matches each against a scratch platform mirroring every
// shard's catalog, and settles the winning mashup with an escrow-style
// two-phase commit across the owning shards:
//
//	begin (coord log) → prepare (home shard escrow, WAL event)
//	→ decide (coord log) → commit home (WAL event) → commit remotes (WAL
//	events) → want-done → done (coord log)
//
// Every boundary is a durable record, so recovery resolves any in-flight
// transaction from the logs alone: undecided → presumed abort (the want
// retries under a fresh xid); decided-commit → re-drive the remaining legs
// (each shard leg is idempotent, see engine/xtx.go); decided-abort → finish
// the abort. Nothing the coordinator knows lives outside the logs.
type coordinator struct {
	m   *Market
	log *coordLog // nil for in-memory federations

	mu      sync.Mutex // guards the queue, tickets and counters
	wants   []*fedWant
	tickets map[string]*engine.Ticket
	wantSeq uint64
	xidSeq  uint64

	settled uint64 // committed cross-shard transactions
	aborted uint64 // aborted attempts (prepare failures + presumed aborts)

	// crash, when non-nil, is the test hook simulating process death at a
	// named 2PC boundary: a non-nil return abandons the settle mid-flight
	// with all durable records exactly as a crash would leave them.
	crash func(point string) error
}

// fedWant is one queued cross-shard want.
type fedWant struct {
	ticket   string
	spec     *core.RequestSpec
	priority int
}

func newCoordinator(m *Market, log *coordLog) *coordinator {
	return &coordinator{m: m, log: log, tickets: map[string]*engine.Ticket{}}
}

func (c *coordinator) crashAt(point string) error {
	if c.crash == nil {
		return nil
	}
	return c.crash(point)
}

// enqueue files a cross-shard want: durable first (want record), then
// queued. The returned coordinator ticket ("x:000001") is pollable through
// Market.Ticket like any shard ticket.
func (c *coordinator) enqueue(want dod.Want, fn *wtp.Function, priority int) (string, error) {
	spec, ok := core.EncodeRequest(want, fn)
	if !ok {
		return "", fmt.Errorf("federation: cross-shard requests must carry a serializable task")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wantSeq++
	ticket := fmt.Sprintf("x:%06d", c.wantSeq)
	if err := c.log.append(coordRecord{Type: recWant, Ticket: ticket, Spec: spec, Priority: priority}); err != nil {
		c.wantSeq--
		return "", err
	}
	c.wants = append(c.wants, &fedWant{ticket: ticket, spec: spec, priority: priority})
	c.tickets[ticket] = &engine.Ticket{ID: ticket, Kind: engine.KindRequest,
		Status: engine.TicketQueued, Participant: spec.Buyer, Priority: priority}
	return ticket, nil
}

func (c *coordinator) ticket(id string) (engine.Ticket, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tickets[id]
	if !ok {
		return engine.Ticket{}, false
	}
	return *t, true
}

func (c *coordinator) setTicket(id string, f func(*engine.Ticket)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.tickets[id]; ok {
		f(t)
	}
}

func (c *coordinator) pendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.wants)
}

func (c *coordinator) counters() (settled, aborted uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.settled, c.aborted
}

// dropWant removes a want from the pending queue (terminal outcome reached).
func (c *coordinator) dropWant(ticket string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, w := range c.wants {
		if w.ticket == ticket {
			c.wants = append(c.wants[:i], c.wants[i+1:]...)
			return
		}
	}
}

// round attempts to settle every pending cross-shard want once. Caller holds
// the Market's coordinator lock, so rounds, enlisting snapshots and recovery
// never interleave. Returns how many wants settled.
func (c *coordinator) round() int {
	c.mu.Lock()
	pending := append([]*fedWant(nil), c.wants...)
	c.mu.Unlock()
	settled := 0
	for _, w := range pending {
		done, err := c.settle(w)
		if err != nil {
			// A crash-hook abort or an I/O failure: leave the want pending;
			// recovery (or the next round) picks it back up.
			return settled
		}
		if done {
			settled++
		}
	}
	return settled
}

// match runs the want against a scratch platform mirroring every shard's
// catalog: the buyer is funded with their real home-shard balance, every
// shard's datasets are shared in (shard, share) order, and one matching
// round decides mashup, price and cuts. The scratch ledger is discarded —
// only the outcome numbers feed the 2PC. Returns nil when no acceptable
// mashup exists yet (the want stays pending).
func (c *coordinator) match(w *fedWant) (*arbiter.Transaction, error) {
	want, fn, err := w.spec.Decode()
	if err != nil {
		return nil, err
	}
	opts := c.m.cfg.Platform
	p, err := core.NewPlatform(opts)
	if err != nil {
		return nil, err
	}
	home := HomeOf(w.spec.Buyer, len(c.m.shards))
	funds := c.m.shards[home].Platform.Arbiter.Ledger.Balance(w.spec.Buyer).Float()
	p.Buyer(w.spec.Buyer, funds)
	for _, sh := range c.m.shards {
		for _, d := range sh.Platform.DatasetStates() {
			terms := license.Terms{Kind: license.Kind(d.License), ExclusivityTaxRate: d.TaxRate}
			// Cross-shard ID collisions (two sellers picking the same dataset
			// ID on different shards) lose the later copy here; shard-local
			// clearing is untouched.
			_ = p.ShareDataset(d.Owner, catalog.DatasetID(d.ID), d.Relation, d.Meta, terms)
		}
	}
	if _, err := p.SubmitRequest(want, fn); err != nil {
		return nil, err
	}
	res, err := p.MatchRound()
	if err != nil {
		return nil, err
	}
	if len(res.Transactions) == 0 {
		return nil, nil
	}
	return res.Transactions[0], nil
}

// settle runs one want through match + 2PC. done reports a terminal outcome
// (committed or failed); a still-unmatchable want returns (false, nil) and
// stays queued. An error means the attempt died mid-flight (crash hook or
// I/O) with its durable records in place for recovery.
//
// Ex-post designs settle cross-shard sales up-front at the delivered price:
// the escrowed two-phase commit pays out immediately, and no later value
// report is expected (the report surface stays shard-local). Documented in
// the Federation section of the README.
func (c *coordinator) settle(w *fedWant) (bool, error) {
	tx, err := c.match(w)
	if err != nil {
		// Matching errors are terminal for the want (e.g. an undecodable
		// spec); record the failure so the client sees it.
		return true, c.finishWant(w.ticket, "", 0, err)
	}
	if tx == nil {
		return false, nil
	}
	n := len(c.m.shards)
	home := HomeOf(tx.Buyer, n)
	cutsByShard := map[string]map[string]float64{}
	for seller, cut := range tx.SellerCuts {
		key := strconv.Itoa(HomeOf(seller, n))
		if cutsByShard[key] == nil {
			cutsByShard[key] = map[string]float64{}
		}
		cutsByShard[key][seller] = cut
	}

	c.mu.Lock()
	c.xidSeq++
	xid := fmt.Sprintf("xtx-%06d", c.xidSeq)
	c.mu.Unlock()

	if err := c.log.append(coordRecord{Type: recBegin, Xid: xid, Ticket: w.ticket,
		Buyer: tx.Buyer, Home: home, Price: tx.Price, ArbiterCut: tx.ArbiterCut,
		CutsByShrd: cutsByShard, Datasets: tx.Datasets}); err != nil {
		return false, err
	}
	if err := c.crashAt("begin"); err != nil {
		return false, err
	}

	homeEng := c.m.shards[home].Engine
	if err := homeEng.XTxPrepare(xid, tx.Buyer, tx.Price); err != nil {
		// The buyer's real balance no longer covers the matched price (it
		// changed between match and prepare). Decide abort; the want fails.
		if lerr := c.log.append(coordRecord{Type: recDecide, Xid: xid}); lerr != nil {
			return false, lerr
		}
		_ = homeEng.XTxAbort(xid) // no escrow held; no-op
		c.mu.Lock()
		c.aborted++
		c.mu.Unlock()
		if ferr := c.finishWant(w.ticket, "", 0, err); ferr != nil {
			return false, ferr
		}
		if lerr := c.log.append(coordRecord{Type: recDone, Xid: xid}); lerr != nil {
			return false, lerr
		}
		return true, nil
	}
	if err := c.crashAt("prepared"); err != nil {
		return false, err
	}

	if err := c.log.append(coordRecord{Type: recDecide, Xid: xid, Commit: true}); err != nil {
		return false, err
	}
	if err := c.crashAt("decided"); err != nil {
		return false, err
	}

	if err := c.commitLegs(xid, home, tx.Buyer, tx.Price, tx.ArbiterCut, cutsByShard, "crash"); err != nil {
		return false, err
	}

	if err := c.finishWant(w.ticket, xid, tx.Price, nil); err != nil {
		return false, err
	}
	if err := c.crashAt("want-done"); err != nil {
		return false, err
	}
	if err := c.log.append(coordRecord{Type: recDone, Xid: xid}); err != nil {
		return false, err
	}
	if err := c.crashAt("done"); err != nil {
		return false, err
	}
	c.mu.Lock()
	c.settled++
	c.mu.Unlock()
	return true, nil
}

// commitLegs applies a decided commit to every shard: home first (escrow
// release + local cuts + remote-cut withdrawal), then each remote shard in
// index order. Every leg is idempotent, so recovery re-drives the same
// sequence safely. crashMode selects the hook points ("crash" live,
// "recover-crash" during recovery, so tests can kill either pass).
func (c *coordinator) commitLegs(xid string, home int, buyer string, price, arbiterCut float64,
	cutsByShard map[string]map[string]float64, crashMode string) error {
	homeKey := strconv.Itoa(home)
	local := cutsByShard[homeKey]
	remoteFlat := map[string]float64{}
	var remoteShards []int
	for key, cuts := range cutsByShard {
		if key == homeKey {
			continue
		}
		s, err := strconv.Atoi(key)
		if err != nil || s < 0 || s >= len(c.m.shards) {
			return fmt.Errorf("federation: xtx %s names unknown shard %q", xid, key)
		}
		remoteShards = append(remoteShards, s)
		for seller, cut := range cuts {
			remoteFlat[seller] = cut
		}
	}
	sort.Ints(remoteShards)

	homeEng := c.m.shards[home].Engine
	if homeEng.XTxState(xid) == engine.XTxUnknown {
		// Only reachable from recovery: the shard's prepare event was lost
		// with a non-always sync policy. Replay returned the buyer's funds,
		// so re-holding them succeeds; decided-commit means it did once.
		if err := homeEng.XTxPrepare(xid, buyer, price); err != nil {
			return fmt.Errorf("federation: xtx %s re-prepare: %w", xid, err)
		}
	}
	if err := homeEng.XTxCommitHome(xid, arbiterCut, local, remoteFlat); err != nil {
		return err
	}
	if err := c.crashAt(crashMode + ":home-committed"); err != nil {
		return err
	}
	for _, s := range remoteShards {
		if err := c.m.shards[s].Engine.XTxCommitRemote(xid, cutsByShard[strconv.Itoa(s)]); err != nil {
			return err
		}
		if err := c.crashAt(fmt.Sprintf("%s:remote-committed-%d", crashMode, s)); err != nil {
			return err
		}
	}
	return nil
}

// finishWant records a want's terminal outcome (durable want-done record,
// ticket update, queue removal). err != nil marks the ticket failed.
func (c *coordinator) finishWant(ticket, xid string, price float64, werr error) error {
	rec := coordRecord{Type: recWantDone, Ticket: ticket, TxID: xid, Price: price, Status: "done"}
	if werr != nil {
		rec.Status, rec.Err = "failed", werr.Error()
	}
	if err := c.log.append(rec); err != nil {
		return err
	}
	c.applyWantDone(rec)
	return nil
}

// applyWantDone folds a want-done record into the in-memory queue/tickets
// (shared by the live path and recovery).
func (c *coordinator) applyWantDone(rec coordRecord) {
	c.dropWant(rec.Ticket)
	c.setTicket(rec.Ticket, func(t *engine.Ticket) {
		if rec.Status == "failed" {
			t.Status, t.Err = engine.TicketFailed, rec.Err
			return
		}
		t.Status, t.TxID, t.Price = engine.TicketDone, rec.TxID, rec.Price
	})
}

// xtxRecovery is the per-transaction state recovery folds out of the log.
type xtxRecovery struct {
	begin   coordRecord
	decided bool
	commit  bool
	done    bool
}

// recover rebuilds the coordinator from its log records and resolves every
// in-doubt transaction. Called from Open, after every shard has replayed its
// own WAL (so shard-side xtx state is current), before engines start.
func (c *coordinator) recover(recs []coordRecord) error {
	xtxs := map[string]*xtxRecovery{}
	var xtxOrder []string
	for _, r := range recs {
		switch r.Type {
		case recWant:
			if n := ticketSeq(r.Ticket); n > c.wantSeq {
				c.wantSeq = n
			}
			c.wants = append(c.wants, &fedWant{ticket: r.Ticket, spec: r.Spec, priority: r.Priority})
			c.tickets[r.Ticket] = &engine.Ticket{ID: r.Ticket, Kind: engine.KindRequest,
				Status: engine.TicketQueued, Participant: specBuyer(r.Spec), Priority: r.Priority}
		case recWantDone:
			c.applyWantDone(r)
		case recBegin:
			if n := ticketSeq(r.Xid); n > c.xidSeq {
				c.xidSeq = n
			}
			if xtxs[r.Xid] == nil {
				xtxOrder = append(xtxOrder, r.Xid)
			}
			xtxs[r.Xid] = &xtxRecovery{begin: r}
		case recDecide:
			if x := xtxs[r.Xid]; x != nil {
				x.decided, x.commit = true, r.Commit
			}
		case recDone:
			if x := xtxs[r.Xid]; x != nil {
				x.done = true
				if x.commit {
					c.settled++
				} else {
					c.aborted++
				}
			}
		}
	}
	for _, xid := range xtxOrder {
		x := xtxs[xid]
		if x.done {
			continue
		}
		if err := c.resolve(xid, x); err != nil {
			return fmt.Errorf("federation: recover xtx %s: %w", xid, err)
		}
	}
	return nil
}

// resolve finishes one in-doubt transaction from its durable records.
func (c *coordinator) resolve(xid string, x *xtxRecovery) error {
	b := x.begin
	if b.Home < 0 || b.Home >= len(c.m.shards) {
		return fmt.Errorf("home shard %d out of range", b.Home)
	}
	homeEng := c.m.shards[b.Home].Engine
	if !x.decided {
		// Presumed abort: no durable decision means no shard may have
		// observed a commit; refund any held escrow and close the attempt.
		// The originating want is still pending and retries under a new xid.
		if err := c.log.append(coordRecord{Type: recDecide, Xid: xid}); err != nil {
			return err
		}
		if err := homeEng.XTxAbort(xid); err != nil {
			return err
		}
		c.aborted++
		return c.log.append(coordRecord{Type: recDone, Xid: xid})
	}
	if !x.commit {
		if err := homeEng.XTxAbort(xid); err != nil {
			return err
		}
		c.aborted++
		return c.log.append(coordRecord{Type: recDone, Xid: xid})
	}
	// Decided commit: re-drive every leg (all idempotent), then finish the
	// want if its terminal record did not make it out before the crash.
	if err := c.commitLegs(xid, b.Home, b.Buyer, b.Price, b.ArbiterCut, b.CutsByShrd, "recover-crash"); err != nil {
		return err
	}
	if t, ok := c.ticket(b.Ticket); ok && !t.Status.Terminal() {
		if err := c.finishWant(b.Ticket, xid, b.Price, nil); err != nil {
			return err
		}
	}
	c.settled++
	return c.log.append(coordRecord{Type: recDone, Xid: xid})
}

// ticketSeq parses the numeric suffix of "x:%06d" / "xtx-%06d" IDs.
func ticketSeq(id string) uint64 {
	i := strings.LastIndexAny(id, ":-")
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseUint(id[i+1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func specBuyer(spec *core.RequestSpec) string {
	if spec == nil {
		return ""
	}
	return spec.Buyer
}
