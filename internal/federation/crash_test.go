package federation

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ledger"
	"repro/internal/wal"
)

// This file is the federation's crash harness: the 2PC kill matrix (a
// simulated process death at every commit boundary, including boundaries
// inside recovery itself) and the multi-shard restart fingerprints. All
// durable runs use SyncAlways so the shard WALs hold exactly what the live
// process saw — the interesting torn-prefix story is the single-engine WAL
// suite's job; here the variable is where the COORDINATOR died.

// fedConfig is the durable 2-shard config every crash test uses.
func fedConfig(dir string, shards int) Config {
	return Config{
		Shards:   shards,
		Dir:      dir,
		Sync:     wal.SyncAlways,
		Platform: core.Options{Design: testDesign},
	}
}

// accountBalances snapshots the balances the 2PC moves money between.
func accountBalances(m *Market, fx crossShardFixture) map[string]ledger.Currency {
	out := map[string]ledger.Currency{}
	for _, name := range []string{fx.buyer, fx.sellerA, fx.sellerB} {
		bal, _ := m.Balance(name)
		out[name] = bal
	}
	// The arbiter's cut lands on the buyer's home shard (shard 0).
	out["arbiter@0"] = m.Shards()[0].Platform.Arbiter.Ledger.Balance(arbiter.ArbiterAccount)
	return out
}

// runBaseline drives the canonical cross-shard settle to completion with no
// crash and returns its final balances, per-shard fingerprints and supply.
func runBaseline(t *testing.T) (map[string]ledger.Currency, [][]byte, ledger.Currency) {
	t.Helper()
	m, err := Open(fedConfig(t.TempDir(), 2))
	if err != nil {
		t.Fatal(err)
	}
	fx := newCrossShardFixture(t)
	fx.drive(t, m)
	tk := fx.submitSpanning(t, m)
	if n := m.CoordRound(); n != 1 {
		t.Fatalf("baseline round settled %d wants, want 1", n)
	}
	if got, _ := m.Ticket(tk); got.Status != engine.TicketDone || got.TxID != "xtx-000001" {
		t.Fatalf("baseline ticket: %+v", got)
	}
	bals := accountBalances(m, fx)
	supply := m.TotalSupply()
	m.Stop()
	prints := make([][]byte, 2)
	for i, sh := range m.Shards() {
		prints[i] = shardFingerprint(t, sh)
	}
	return bals, prints, supply
}

// killPoints are every 2PC boundary the live settle path crosses, in order.
// Points at or after the durable commit decision must re-drive to the same
// bytes; points before it resolve by presumed abort and retry.
var killPoints = []struct {
	point       string
	afterDecide bool // decision durable as commit when the crash hit
}{
	{"begin", false},
	{"prepared", false},
	{"decided", true},
	{"crash:home-committed", true},
	{"crash:remote-committed-1", true},
	{"want-done", true},
	{"done", true},
}

// TestXTxKillMatrix kills the coordinator at every 2PC boundary, reboots
// the federation from the logs, and asserts: total funds across all shard
// ledgers are conserved; the transaction settles exactly once; and for
// every kill at or after the durable commit decision the recovered shards
// are byte-identical to the uncrashed baseline.
func TestXTxKillMatrix(t *testing.T) {
	baseBals, basePrints, baseSupply := runBaseline(t)

	for _, kp := range killPoints {
		t.Run(kp.point, func(t *testing.T) {
			dir := t.TempDir()
			cfg := fedConfig(dir, 2)
			cfg.testCrash = func(point string) error {
				if point == kp.point {
					return fmt.Errorf("injected death at %s", point)
				}
				return nil
			}
			m, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fx := newCrossShardFixture(t)
			fx.drive(t, m)
			fx.submitSpanning(t, m)
			settledLive := m.CoordRound()
			if settledLive != 0 {
				t.Fatalf("crashed settle still counted (%d)", settledLive)
			}
			// Money must never be CREATED mid-flight: between home-commit's
			// withdraw and the remote deposits the supply may dip, never rise.
			if got := m.TotalSupply(); got > baseSupply {
				t.Fatalf("mid-crash supply %v exceeds baseline %v", got, baseSupply)
			}
			m.Stop()

			// Reboot: every shard replays its WAL, then the coordinator
			// resolves the in-doubt transaction from the two logs.
			m2, err := Open(fedConfig(dir, 2))
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			if got := m2.TotalSupply(); got != baseSupply {
				t.Fatalf("post-recovery supply %v, want %v", got, baseSupply)
			}
			for _, sh := range m2.Shards() {
				if i := sh.Platform.Arbiter.Ledger.VerifyChain(); i >= 0 {
					t.Fatalf("shard %d audit chain corrupt at %d", sh.Index, i)
				}
				if sh.Engine.XTxInFlight() != 0 {
					t.Fatalf("shard %d left escrow in flight after recovery", sh.Index)
				}
			}

			if kp.afterDecide {
				// Decided commit: recovery re-drove the SAME xid to the same
				// bytes, and the want is terminally done exactly once.
				if pending, settled, _ := m2.CoordStats(); pending != 0 || settled != 1 {
					t.Fatalf("coordinator counters after re-drive: pending=%d settled=%d", pending, settled)
				}
				if tk, ok := m2.Ticket("x:000001"); !ok || tk.Status != engine.TicketDone || tk.TxID != "xtx-000001" {
					t.Fatalf("recovered ticket: %+v", tk)
				}
				m2.Stop()
				for i, sh := range m2.Shards() {
					if got := shardFingerprint(t, sh); string(got) != string(basePrints[i]) {
						t.Fatalf("shard %d diverged from uncrashed baseline after %s kill:\n--- baseline\n%s\n--- recovered\n%s",
							i, kp.point, basePrints[i], got)
					}
				}
			} else {
				// Undecided: presumed abort refunded the escrow and the want
				// retries under a fresh xid; the retry reaches the same
				// economic outcome as the baseline.
				if _, _, aborted := m2.CoordStats(); aborted != 1 {
					t.Fatalf("presumed abort not counted (aborted=%d)", aborted)
				}
				if pending, _, _ := m2.CoordStats(); pending != 1 {
					t.Fatalf("want not pending for retry (pending=%d)", pending)
				}
				if n := m2.CoordRound(); n != 1 {
					t.Fatalf("retry round settled %d", n)
				}
				if tk, ok := m2.Ticket("x:000001"); !ok || tk.Status != engine.TicketDone || tk.TxID != "xtx-000002" {
					t.Fatalf("retried ticket: %+v", tk)
				}
				fxBals := accountBalances(m2, fx)
				for name, want := range baseBals {
					if fxBals[name] != want {
						t.Fatalf("balance %s = %v after retry, baseline %v", name, fxBals[name], want)
					}
				}
				if got := m2.TotalSupply(); got != baseSupply {
					t.Fatalf("post-retry supply %v, want %v", got, baseSupply)
				}
				m2.Stop()
			}

			// A further clean reboot must be a no-op: recovery is idempotent
			// and replays to the exact same per-shard bytes.
			m3, err := Open(fedConfig(dir, 2))
			if err != nil {
				t.Fatalf("second recovery open: %v", err)
			}
			ref := make([][]byte, len(m2.Shards()))
			for i, sh := range m2.Shards() {
				ref[i] = shardFingerprint(t, sh)
			}
			m3.Stop()
			for i, sh := range m3.Shards() {
				if got := shardFingerprint(t, sh); string(got) != string(ref[i]) {
					t.Fatalf("shard %d changed on an idle reboot after %s kill", i, kp.point)
				}
			}
		})
	}
}

// TestXTxDoubleCrashDuringRecovery kills the coordinator right after the
// durable commit decision, then kills the RECOVERY at the home-commit
// boundary, then recovers again — the re-drive must be idempotent through
// both deaths and still land on the baseline bytes.
func TestXTxDoubleCrashDuringRecovery(t *testing.T) {
	_, basePrints, baseSupply := runBaseline(t)

	dir := t.TempDir()
	cfg := fedConfig(dir, 2)
	cfg.testCrash = func(point string) error {
		if point == "decided" {
			return fmt.Errorf("injected death at %s", point)
		}
		return nil
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fx := newCrossShardFixture(t)
	fx.drive(t, m)
	fx.submitSpanning(t, m)
	m.CoordRound()
	m.Stop()

	// First recovery dies after re-driving the home commit: its xtx-committed
	// event is durable in shard 0's WAL, but the remote leg and the
	// coordinator's done record never happen.
	cfg2 := fedConfig(dir, 2)
	cfg2.testCrash = func(point string) error {
		if point == "recover-crash:home-committed" {
			return fmt.Errorf("injected recovery death at %s", point)
		}
		return nil
	}
	if _, err := Open(cfg2); err == nil {
		t.Fatal("recovery should have died at the injected boundary")
	} else if !strings.Contains(err.Error(), "recover-crash:home-committed") {
		t.Fatalf("unexpected recovery error: %v", err)
	}

	// Second recovery: the home leg replays as already-done, the remote leg
	// re-drives, and everything finishes to the baseline bytes.
	m3, err := Open(fedConfig(dir, 2))
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if got := m3.TotalSupply(); got != baseSupply {
		t.Fatalf("supply %v after double crash, want %v", got, baseSupply)
	}
	if pending, settled, _ := m3.CoordStats(); pending != 0 || settled != 1 {
		t.Fatalf("coordinator counters: pending=%d settled=%d", pending, settled)
	}
	m3.Stop()
	for i, sh := range m3.Shards() {
		if got := shardFingerprint(t, sh); string(got) != string(basePrints[i]) {
			t.Fatalf("shard %d diverged after double crash:\n--- baseline\n%s\n--- recovered\n%s", i, basePrints[i], got)
		}
	}
}

// driveMixedWorkload runs local settles on several shards plus one
// cross-shard settle — the restart-fingerprint workload.
func driveMixedWorkload(t *testing.T, m *Market, shards int) {
	t.Helper()
	for shard := 0; shard < shards; shard++ {
		b := nameOn(t, fmt.Sprintf("lb%d-", shard), shard, shards)
		s := nameOn(t, fmt.Sprintf("ls%d-", shard), shard, shards)
		mustTk(m.SubmitRegister(b, 4000))
		openShare(t, m, s, s+"/d0", flatRel(s+"/d0", 20))
		m.TriggerEpoch()
		w, f := coverWant(b, 150, "a", "b")
		mustTk(m.SubmitRequest(w, f))
	}
	m.TriggerEpoch()
	// The spanning pair: distinct column names the local (a, b) datasets do
	// not carry, split between shard 0 and the last shard.
	xb := nameOn(t, "xb", 0, shards)
	xa := nameOn(t, "xa", 0, shards)
	xs := nameOn(t, "xs", shards-1, shards)
	mustTk(m.SubmitRegister(xb, 6000))
	openShare(t, m, xa, xa+"/d0", keyedRel(xa+"/d0", "xleft", 20))
	openShare(t, m, xs, xs+"/d0", keyedRel(xs+"/d0", "xright", 30))
	m.TriggerEpoch()
	w, f := joinWant(xb, 900, "xleft", "xright")
	tk := mustTk(m.SubmitRequest(w, f))
	if shards > 1 && !strings.HasPrefix(tk, "x:") {
		t.Fatalf("spanning want ticket %s missed the coordinator", tk)
	}
	m.TriggerEpoch()
	if shards > 1 {
		if _, settled, _ := m.CoordStats(); settled != 1 {
			t.Fatalf("cross-shard settle missing (settled=%d)", settled)
		}
	}
}

// TestFederationRestartByteIdentical: shards=2 and shards=4 federations,
// clean shutdown, reboot from the per-shard WALs + coordinator log — every
// shard must come back byte-identical, including the cross-shard escrow
// events in its WAL.
func TestFederationRestartByteIdentical(t *testing.T) {
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			m, err := Open(fedConfig(dir, shards))
			if err != nil {
				t.Fatal(err)
			}
			driveMixedWorkload(t, m, shards)
			supply := m.TotalSupply()
			m.Stop()
			prints := make([][]byte, shards)
			for i, sh := range m.Shards() {
				prints[i] = shardFingerprint(t, sh)
			}

			m2, err := Open(fedConfig(dir, shards))
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if got := m2.TotalSupply(); got != supply {
				t.Fatalf("supply %v after restart, want %v", got, supply)
			}
			m2.Stop()
			for i, sh := range m2.Shards() {
				if got := shardFingerprint(t, sh); string(got) != string(prints[i]) {
					t.Fatalf("shard %d/%d diverged on clean restart:\n--- before\n%s\n--- after\n%s",
						i, shards, prints[i], got)
				}
			}
		})
	}
}

// TestFederationSnapshotRestartByteIdentical: SnapshotAll mid-run, more
// work, clean shutdown, reboot — every shard boots from its snapshot plus
// WAL tail and must match the pre-restart bytes; covered segments were
// pruned underneath.
func TestFederationSnapshotRestartByteIdentical(t *testing.T) {
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			cfg := fedConfig(dir, shards)
			cfg.SegmentBytes = 4 << 10 // small segments so pruning has work
			m, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			driveMixedWorkload(t, m, shards)
			paths, err := m.SnapshotAll()
			if err != nil {
				t.Fatalf("SnapshotAll: %v", err)
			}
			if len(paths) != shards {
				t.Fatalf("SnapshotAll wrote %d snapshots, want %d", len(paths), shards)
			}
			// Post-snapshot work lands in the WAL tails.
			late := nameOn(t, "late", 0, shards)
			mustTk(m.SubmitRegister(late, 777))
			m.TriggerEpoch()
			supply := m.TotalSupply()
			m.Stop()
			prints := make([][]byte, shards)
			for i, sh := range m.Shards() {
				prints[i] = shardFingerprint(t, sh)
			}

			m2, err := Open(cfg)
			if err != nil {
				t.Fatalf("reopen from snapshots: %v", err)
			}
			if got := m2.TotalSupply(); got != supply {
				t.Fatalf("supply %v after snapshot restart, want %v", got, supply)
			}
			if bal, ok := m2.Balance(late); !ok || bal != ledger.FromFloat(777) {
				t.Fatalf("post-snapshot registration lost: %v (ok=%v)", bal, ok)
			}
			m2.Stop()
			for i, sh := range m2.Shards() {
				if got := shardFingerprint(t, sh); string(got) != string(prints[i]) {
					t.Fatalf("shard %d/%d diverged on snapshot restart:\n--- before\n%s\n--- after\n%s",
						i, shards, prints[i], got)
				}
			}
		})
	}
}

// TestSnapshotRefusedMidXTx: the engine-level guard — a shard holding a 2PC
// escrow refuses to snapshot, so no lineage can ever capture in-transit
// funds (SnapshotAll additionally serializes against settles).
func TestSnapshotRefusedMidXTx(t *testing.T) {
	dir := t.TempDir()
	cfg := fedConfig(dir, 2)
	cfg.testCrash = func(point string) error {
		if point == "prepared" {
			return fmt.Errorf("hold it there")
		}
		return nil
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	fx := newCrossShardFixture(t)
	fx.drive(t, m)
	fx.submitSpanning(t, m)
	m.CoordRound() // dies with the escrow held on shard 0
	if m.Shards()[0].Engine.XTxInFlight() != 1 {
		t.Fatal("escrow should be in flight")
	}
	if _, err := m.Shards()[0].Engine.Snapshot(); err == nil {
		t.Fatal("snapshot must be refused while an escrow is in flight")
	}
	if _, err := m.Shards()[1].Engine.Snapshot(); err != nil {
		t.Fatalf("uninvolved shard refused to snapshot: %v", err)
	}
}
