// Package federation shards the market itself: N independent arbiter shards
// — each a full platform + engine + WAL lineage — run their epochs in
// parallel behind a router, and a coordinator clears the mashups no single
// shard can. See doc.go for the architecture.
package federation

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/engine"
	"repro/internal/ledger"
	"repro/internal/license"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/wal"
	"repro/internal/wtp"
)

// Config configures a federated market.
type Config struct {
	// Shards is the number of arbiter shards (<= 1 means a single shard —
	// still a federation, but every participant homes to shard 0 and the
	// coordinator never sees a want).
	Shards int
	// Dir, when non-empty, makes the federation durable: each shard gets an
	// independent WAL + snapshot lineage under <Dir>/shard-<i>, and the
	// coordinator log lives at <Dir>/coord.log. Empty = fully in-memory.
	Dir string
	// Sync is the per-shard WAL fsync policy (default wal.SyncEpoch).
	Sync wal.SyncPolicy
	// SegmentBytes is the per-shard WAL segment size (0 = wal default).
	SegmentBytes int64
	// Engine is the per-shard engine template. Metrics and ShardLabel are
	// managed by the federation; everything else applies to each shard
	// verbatim (so EpochEvery > 0 gives every shard — and the coordinator —
	// a periodic epoch).
	Engine engine.Config
	// Platform is the per-shard market design. Every shard must share one
	// design: the coordinator prices cross-shard mashups on a scratch
	// platform built from these same options.
	Platform core.Options
	// Metrics, when non-nil, receives federation telemetry: each shard's
	// instruments carry a `shard` label (engine.Config.ShardLabel), and the
	// federation registers the process-wide aggregates once.
	Metrics *obs.Registry

	// testCrash, when non-nil, is the crash-injection hook for the 2PC kill
	// matrix (in-package tests only): it fires at every named commit
	// boundary, including the ones inside recovery, and a non-nil return
	// abandons the attempt exactly where a process death would.
	testCrash func(point string) error
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	return c
}

// Shard is one arbiter shard: a full platform + engine, plus its WAL when
// the federation is durable.
type Shard struct {
	Index    int
	Platform *core.Platform
	Engine   *engine.Engine
	WAL      *wal.Log // nil when in-memory
	Dir      string   // "" when in-memory
}

// Market is the federation: the routing surface in front of the shards and
// the cross-shard coordinator behind them. Its submit/ticket/stats surface
// mirrors *engine.Engine so callers (the gateway, benchmarks) can swap one
// for the other.
type Market struct {
	cfg    Config
	shards []*Shard
	router *router
	coord  *coordinator

	// coordMu is the coordinator mutex: settle rounds, recovery and
	// SnapshotAll serialize on it, so a snapshot can never observe a shard
	// mid-2PC.
	coordMu sync.Mutex

	stop    chan struct{}
	loopWG  sync.WaitGroup
	started atomic.Bool
}

// Open boots a federated market: every shard recovers from its own WAL
// (durable mode), the coordinator resolves in-doubt cross-shard
// transactions from the logs, and the router is seeded from the recovered
// catalogs. Engines are not started; call Start.
func Open(cfg Config) (*Market, error) {
	cfg = cfg.withDefaults()
	m := &Market{cfg: cfg, router: newRouter(cfg.Shards), stop: make(chan struct{})}

	var coordRecs []coordRecord
	var clog *coordLog
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
		var err error
		clog, coordRecs, err = openCoordLog(cfg.Dir)
		if err != nil {
			return nil, err
		}
	}

	for i := 0; i < cfg.Shards; i++ {
		ecfg := cfg.Engine
		ecfg.Metrics = cfg.Metrics
		ecfg.ShardLabel = strconv.Itoa(i)
		ecfg.Persister = nil
		sh := &Shard{Index: i}
		if cfg.Dir != "" {
			sh.Dir = filepath.Join(cfg.Dir, fmt.Sprintf("shard-%d", i))
			// Shard WALs skip wal-level metrics: N logs setting the same
			// unlabeled wal_segments gauge would flap it meaninglessly.
			p, e, w, _, err := wal.Boot(cfg.Platform, ecfg, wal.Options{
				Dir: sh.Dir, Policy: cfg.Sync, SegmentBytes: cfg.SegmentBytes})
			if err != nil {
				m.closeShards()
				return nil, fmt.Errorf("federation: boot shard %d: %w", i, err)
			}
			sh.Platform, sh.Engine, sh.WAL = p, e, w
		} else {
			p, err := core.NewPlatform(cfg.Platform)
			if err != nil {
				return nil, err
			}
			sh.Platform, sh.Engine = p, engine.New(p, ecfg)
		}
		m.shards = append(m.shards, sh)
	}

	// Coordinator recovery runs after every shard has replayed its WAL (so
	// shard-side escrow state is current) and before engines start.
	m.coord = newCoordinator(m, clog)
	m.coord.crash = cfg.testCrash
	m.coordMu.Lock()
	err := m.coord.recover(coordRecs)
	m.coordMu.Unlock()
	if err != nil {
		m.closeShards()
		return nil, err
	}

	for _, sh := range m.shards {
		m.router.seedFromShard(sh.Index, sh.Platform.DatasetStates())
	}
	registerFederationMetrics(cfg.Metrics, m)
	return m, nil
}

func (m *Market) closeShards() {
	for _, sh := range m.shards {
		if sh.WAL != nil {
			_ = sh.WAL.Close()
		}
	}
	_ = m.coordLogClose()
}

func (m *Market) coordLogClose() error {
	if m.coord == nil {
		return nil
	}
	return m.coord.log.close()
}

// Start launches every shard's epoch machinery, plus the coordinator's own
// periodic round when the engine template has one.
func (m *Market) Start() {
	if !m.started.CompareAndSwap(false, true) {
		return
	}
	for _, sh := range m.shards {
		sh.Engine.Start()
	}
	if every := m.cfg.Engine.EpochEvery; every > 0 {
		m.loopWG.Add(1)
		go func() {
			defer m.loopWG.Done()
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-m.stop:
					return
				case <-t.C:
					m.CoordRound()
				}
			}
		}()
	}
}

// Stop shuts the federation down: coordinator loop first, then every shard
// engine in parallel (each runs its final flush epoch), then the logs.
func (m *Market) Stop() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	m.loopWG.Wait()
	var wg sync.WaitGroup
	for _, sh := range m.shards {
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			sh.Engine.Stop()
		}(sh)
	}
	wg.Wait()
	m.closeShards()
}

// Shards returns the shard handles (read-only use: tests, the gateway's
// per-shard event/settlement views).
func (m *Market) Shards() []*Shard { return m.shards }

// NumShards returns the shard count.
func (m *Market) NumShards() int { return len(m.shards) }

// --- routing surface ------------------------------------------------------

// SubmitRegister files a participant registration with its home shard.
func (m *Market) SubmitRegister(name string, funds float64) (string, error) {
	s := HomeOf(name, len(m.shards))
	tk, err := m.shards[s].Engine.SubmitRegister(name, funds)
	if err != nil {
		return "", err
	}
	return shardTicket(s, tk), nil
}

// SubmitShare files a dataset share with the seller's home shard and
// optimistically indexes its columns for routing (the share applies at the
// shard's next epoch; until then wants for those columns simply wait).
func (m *Market) SubmitShare(seller string, id catalog.DatasetID, rel *relation.Relation,
	meta wtp.DatasetMeta, terms license.Terms) (string, error) {
	s := HomeOf(seller, len(m.shards))
	tk, err := m.shards[s].Engine.SubmitShare(seller, id, rel, meta, terms)
	if err != nil {
		return "", err
	}
	m.router.addRelation(s, rel)
	return shardTicket(s, tk), nil
}

// SubmitRequest routes a buyer's want: to the home shard when its columns
// resolve there, to the cross-shard coordinator when they span shards.
func (m *Market) SubmitRequest(want dod.Want, f *wtp.Function) (string, error) {
	return m.SubmitRequestPriority(want, f, engine.PriorityNormal)
}

// SubmitRequestPriority is SubmitRequest with an explicit priority class.
func (m *Market) SubmitRequestPriority(want dod.Want, f *wtp.Function, priority int) (string, error) {
	home := HomeOf(f.Buyer, len(m.shards))
	if m.router.spans(want, home) {
		return m.coord.enqueue(want, f, priority)
	}
	tk, err := m.shards[home].Engine.SubmitRequestPriority(want, f, priority)
	if err != nil {
		return "", err
	}
	return shardTicket(home, tk), nil
}

// SubmitReport files an ex-post value report for a shard-local transaction.
// Cross-shard transactions settle up-front at the delivered price (the
// escrowed 2PC pays out immediately), so "xtx-" IDs take no reports.
func (m *Market) SubmitReport(txID string, reported, trueValue float64) (string, error) {
	if strings.HasPrefix(txID, "xtx-") {
		return "", fmt.Errorf("federation: cross-shard transaction %s settled up-front; no ex-post report", txID)
	}
	s, local, ok := splitShardID(txID)
	if !ok || s >= len(m.shards) {
		return "", fmt.Errorf("federation: unknown transaction %q", txID)
	}
	tk, err := m.shards[s].Engine.SubmitReport(local, reported, trueValue)
	if err != nil {
		return "", err
	}
	return shardTicket(s, tk), nil
}

// Ticket resolves a federation ticket: coordinator tickets ("x:...") from
// the coordinator, shard tickets ("s<i>:...") from their shard with IDs
// rewritten back to federation form.
func (m *Market) Ticket(id string) (engine.Ticket, bool) {
	if strings.HasPrefix(id, "x:") {
		return m.coord.ticket(id)
	}
	s, local, ok := splitShardID(id)
	if !ok || s >= len(m.shards) {
		return engine.Ticket{}, false
	}
	t, ok := m.shards[s].Engine.Ticket(local)
	if !ok {
		return engine.Ticket{}, false
	}
	t.ID = shardTicket(s, t.ID)
	if t.TxID != "" {
		t.TxID = shardTicket(s, t.TxID)
	}
	return t, true
}

// Balance returns a participant's ledger balance on its home shard.
func (m *Market) Balance(name string) (ledger.Currency, bool) {
	l := m.shards[HomeOf(name, len(m.shards))].Platform.Arbiter.Ledger
	if !l.Exists(name) {
		return 0, false
	}
	return l.Balance(name), true
}

// TotalSupply sums every shard ledger's total supply — the federation-wide
// conservation quantity: escrow-style 2PC moves value between shards but
// never changes this sum outside registrations.
func (m *Market) TotalSupply() ledger.Currency {
	var total ledger.Currency
	for _, sh := range m.shards {
		total += sh.Platform.Arbiter.Ledger.TotalSupply()
	}
	return total
}

// --- epochs ---------------------------------------------------------------

// TriggerEpoch runs one epoch on every shard concurrently, then one
// coordinator round. Returns the max shard epoch and whether any shard
// counted an epoch or the coordinator settled a want.
func (m *Market) TriggerEpoch() (uint64, bool) {
	var wg sync.WaitGroup
	var counted atomic.Bool
	var maxEpoch atomic.Uint64
	for _, sh := range m.shards {
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			ep, ok := sh.Engine.TriggerEpoch()
			if ok {
				counted.Store(true)
			}
			for {
				cur := maxEpoch.Load()
				if ep <= cur || maxEpoch.CompareAndSwap(cur, ep) {
					return
				}
			}
		}(sh)
	}
	wg.Wait()
	if m.CoordRound() > 0 {
		counted.Store(true)
	}
	return maxEpoch.Load(), counted.Load()
}

// CoordRound runs one coordinator round (all pending cross-shard wants get
// one settle attempt) under the coordinator mutex. Returns settles.
func (m *Market) CoordRound() int {
	m.coordMu.Lock()
	defer m.coordMu.Unlock()
	return m.coord.round()
}

// --- aggregate views ------------------------------------------------------

// Stats merges every shard's engine stats into one market-wide view:
// throughput counters sum; process-wide gauges (allocator counters, policy,
// worker config) come from shard 0; cross-shard settles count as matches.
func (m *Market) Stats() engine.Stats {
	var agg engine.Stats
	for i, sh := range m.shards {
		s := sh.Engine.Stats()
		agg.Epochs += s.Epochs
		agg.Submitted += s.Submitted
		agg.Applied += s.Applied
		agg.Matched += s.Matched
		agg.Failed += s.Failed
		agg.OpenRequests += s.OpenRequests
		agg.Pending += s.Pending
		agg.Events += s.Events
		agg.Rejected += s.Rejected
		agg.Shed += s.Shed
		agg.Aged += s.Aged
		agg.BuildMillis += s.BuildMillis
		agg.CacheHits += s.CacheHits
		agg.CacheStale += s.CacheStale
		agg.SubJoinHits += s.SubJoinHits
		agg.BuildDeadlineExceeded += s.BuildDeadlineExceeded
		agg.BuildsCancelled += s.BuildsCancelled
		agg.PriceMillis += s.PriceMillis
		agg.MatchesPerSec += s.MatchesPerSec
		agg.LastPersisted += s.LastPersisted
		if s.Uptime > agg.Uptime {
			agg.Uptime = s.Uptime
		}
		if s.PersistErr != "" && agg.PersistErr == "" {
			agg.PersistErr = fmt.Sprintf("shard %d: %s", i, s.PersistErr)
		}
		if i == 0 {
			agg.Policy = s.Policy
			agg.DoDWorkers = s.DoDWorkers
			agg.AllocEvals = s.AllocEvals
			agg.AllocMemoHits = s.AllocMemoHits
			agg.AllocExact = s.AllocExact
			agg.AllocSampled = s.AllocSampled
			agg.AllocEscalations = s.AllocEscalations
		}
	}
	settled, _ := m.coord.counters()
	agg.Matched += settled
	agg.OpenRequests += m.coord.pendingCount()
	if agg.Uptime > 0 {
		// Recompute the blended rate from the merged counters so the
		// cross-shard settles participate.
		agg.MatchesPerSec = 0
		for _, sh := range m.shards {
			agg.MatchesPerSec += sh.Engine.Stats().MatchesPerSec
		}
		agg.MatchesPerSec += float64(settled) / agg.Uptime.Seconds()
	}
	return agg
}

// ShardStats returns each shard's own engine stats, index-aligned — the
// per-shard detail behind the aggregate /engine/stats view.
func (m *Market) ShardStats() []engine.Stats {
	out := make([]engine.Stats, len(m.shards))
	for i, sh := range m.shards {
		out[i] = sh.Engine.Stats()
	}
	return out
}

// CoordStats reports the coordinator's own counters.
func (m *Market) CoordStats() (pending int, settled, aborted uint64) {
	settled, aborted = m.coord.counters()
	return m.coord.pendingCount(), settled, aborted
}

// --- snapshots ------------------------------------------------------------

// SnapshotAll snapshots every shard and prunes its covered WAL segments,
// all under the coordinator mutex — no shard can be mid-2PC in the
// resulting snapshot set, so the per-shard snapshots are mutually
// consistent with the coordinator log. Returns the snapshot paths.
func (m *Market) SnapshotAll() ([]string, error) {
	if m.cfg.Dir == "" {
		return nil, fmt.Errorf("federation: in-memory market has no snapshot lineage")
	}
	m.coordMu.Lock()
	defer m.coordMu.Unlock()
	paths := make([]string, 0, len(m.shards))
	for _, sh := range m.shards {
		snap, err := sh.Engine.Snapshot()
		if err != nil {
			return paths, fmt.Errorf("federation: snapshot shard %d: %w", sh.Index, err)
		}
		p, err := wal.WriteSnapshot(sh.Dir, snap)
		if err != nil {
			return paths, err
		}
		if _, _, err := wal.PruneAfterSnapshot(sh.Dir, sh.WAL); err != nil {
			return paths, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// registerFederationMetrics registers the process-wide sampled families the
// per-shard engines skip (ShardLabel gates them off: several shards
// registering one closure under the same name would shadow each other),
// aggregated across shards, under the exact names a single engine uses —
// dashboards keep working unchanged. Uses StatsLite — the scrape-safe
// counter view — so a scrape never waits on a shard's in-flight epoch.
func registerFederationMetrics(reg *obs.Registry, m *Market) {
	if reg == nil {
		return
	}
	sum := func(f func(engine.Stats) float64) func() float64 {
		return func() float64 {
			var t float64
			for _, sh := range m.shards {
				t += f(sh.Engine.StatsLite())
			}
			return t
		}
	}
	sumCache := func(f func(dod.CacheStats) float64) func() float64 {
		return func() float64 {
			var t float64
			for _, sh := range m.shards {
				t += f(sh.Platform.DoDCacheStats())
			}
			return t
		}
	}
	reg.NewCounterFunc("engine_epochs_total", "Counted epochs since boot (all shards).",
		sum(func(s engine.Stats) float64 { return float64(s.Epochs) }))
	reg.NewCounterFunc("engine_submitted_total", "Submissions accepted into intake (all shards).",
		sum(func(s engine.Stats) float64 { return float64(s.Submitted) }))
	reg.NewCounterFunc("engine_applied_total", "Submissions applied successfully (all shards).",
		sum(func(s engine.Stats) float64 { return float64(s.Applied) }))
	reg.NewCounterFunc("engine_matched_total", "Requests settled by matching rounds (all shards + cross-shard).",
		func() float64 {
			var t float64
			for _, sh := range m.shards {
				t += float64(sh.Engine.StatsLite().Matched)
			}
			settled, _ := m.coord.counters()
			return t + float64(settled)
		})
	reg.NewCounterFunc("engine_failed_total", "Submissions rejected at apply time (all shards).",
		sum(func(s engine.Stats) float64 { return float64(s.Failed) }))
	reg.NewGaugeFunc("engine_pending_submissions", "Submissions queued across all intake shards (all shards).",
		sum(func(s engine.Stats) float64 { return float64(s.Pending) }))
	reg.NewGaugeFunc("arbiter_open_requests", "Requests filed but not yet matched (all shards + coordinator queue).",
		func() float64 {
			var t float64
			for _, sh := range m.shards {
				t += float64(sh.Platform.OpenRequestCount())
			}
			return t + float64(m.coord.pendingCount())
		})
	reg.NewGaugeFunc("arbiter_unmet_wants", "Distinct wanted columns carrying unmet-demand signals (all shards).",
		func() float64 {
			var t float64
			for _, sh := range m.shards {
				t += float64(sh.Platform.UnmetWantCount())
			}
			return t
		})
	reg.NewCounterFunc("dod_builds_total", "Beam searches run by the DoD engines (all shards).",
		sumCache(func(c dod.CacheStats) float64 { return float64(c.Builds) }))
	reg.NewCounterFunc("dod_cache_hits_total", "Version-valid candidate-cache reuses (all shards).",
		sumCache(func(c dod.CacheStats) float64 { return float64(c.Hits) }))
	reg.NewCounterFunc("dod_cache_stale_total", "Cache lookups invalidated by a catalog version bump (all shards).",
		sumCache(func(c dod.CacheStats) float64 { return float64(c.Stale) }))
	reg.NewCounterFunc("dod_subjoin_memo_hits_total", "Sub-join memo reuses during candidate materialization (all shards).",
		sumCache(func(c dod.CacheStats) float64 { return float64(c.SubJoinHits) }))
	reg.NewGaugeFunc("federation_shards", "Arbiter shards in this market.",
		func() float64 { return float64(len(m.shards)) })
	reg.NewGaugeFunc("federation_coordinator_pending_wants", "Cross-shard wants awaiting settlement.",
		func() float64 { return float64(m.coord.pendingCount()) })
	reg.NewCounterFunc("federation_xtx_committed_total", "Cross-shard transactions committed.",
		func() float64 { s, _ := m.coord.counters(); return float64(s) })
	reg.NewCounterFunc("federation_xtx_aborted_total", "Cross-shard attempts aborted.",
		func() float64 { _, a := m.coord.counters(); return float64(a) })
}
