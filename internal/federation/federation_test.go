package federation

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/engine"
	"repro/internal/ledger"
	"repro/internal/license"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/wtp"
)

const testDesign = "posted-baseline"

// nameOn brute-forces a participant name hashing to the given home shard —
// deterministic, so scripted workloads can pin sellers and buyers to shards.
func nameOn(t *testing.T, prefix string, shard, shards int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		n := fmt.Sprintf("%s%d", prefix, i)
		if HomeOf(n, shards) == shard {
			return n
		}
	}
	t.Fatalf("no name with prefix %q on shard %d/%d", prefix, shard, shards)
	return ""
}

// keyedRel builds a relation with the shared join key k plus one value
// column — datasets then cover only half a join want, exactly the wal
// replay-test idiom forcing multi-source mashups.
func keyedRel(name, valCol string, rows int) *relation.Relation {
	r := relation.New(name, relation.NewSchema(
		relation.Col("k", relation.KindInt), relation.Col(valCol, relation.KindFloat)))
	for i := 0; i < rows; i++ {
		r.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)*2.5))
	}
	return r
}

// flatRel builds a single-source (a, b) relation.
func flatRel(name string, rows int) *relation.Relation {
	r := relation.New(name, relation.NewSchema(
		relation.Col("a", relation.KindInt), relation.Col("b", relation.KindFloat)))
	for i := 0; i < rows; i++ {
		r.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)*2.5))
	}
	return r
}

func joinWant(buyer string, price float64, cols ...string) (dod.Want, *wtp.Function) {
	return dod.Want{Columns: cols}, &wtp.Function{
		Buyer: buyer,
		Task:  wtp.CoverageTask{Columns: cols, WantRows: 1},
		Curve: []wtp.CurvePoint{{MinSatisfaction: 0.9, Price: price}},
	}
}

func coverWant(buyer string, price float64, cols ...string) (dod.Want, *wtp.Function) {
	return dod.Want{Columns: cols}, &wtp.Function{
		Buyer: buyer,
		Task:  wtp.CoverageTask{Columns: cols, WantRows: 1},
		Curve: []wtp.CurvePoint{{MinSatisfaction: 0.5, Price: price}},
	}
}

func mustTk(id string, err error) string {
	if err != nil {
		panic(err)
	}
	return id
}

func openShare(t *testing.T, m *Market, seller, ds string, rel *relation.Relation) string {
	t.Helper()
	return mustTk(m.SubmitShare(seller, catalog.DatasetID(ds), rel,
		wtp.DatasetMeta{Dataset: ds, HasProvenance: true}, license.Terms{Kind: license.Open}))
}

// shardFingerprint canonicalizes one shard's externally observable state —
// the wal replay-test fingerprint, per shard.
func shardFingerprint(t *testing.T, sh *Shard) []byte {
	t.Helper()
	snap, err := sh.Engine.Snapshot()
	if err != nil {
		t.Fatalf("shard %d snapshot: %v", sh.Index, err)
	}
	snap.TakenAt = time.Time{}
	var history []string
	for _, tx := range sh.Platform.Arbiter.History() {
		history = append(history, fmt.Sprintf("%s/%s/%s/%.2f", tx.ID, tx.RequestID, tx.Buyer, tx.Price))
	}
	out, err := json.MarshalIndent(struct {
		Snap      *engine.SnapshotState
		History   []string
		Supply    ledger.Currency
		Conserved bool
	}{snap, history, sh.Platform.Arbiter.Ledger.TotalSupply(), sh.Engine.Settlements().Conserved()}, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHomeOfSingleShardIsZero(t *testing.T) {
	for _, n := range []string{"", "a", "buyer-42", strings.Repeat("x", 100)} {
		if got := HomeOf(n, 1); got != 0 {
			t.Fatalf("HomeOf(%q, 1) = %d", n, got)
		}
		if got := HomeOf(n, 0); got != 0 {
			t.Fatalf("HomeOf(%q, 0) = %d", n, got)
		}
	}
}

func TestShardTicketRoundTrip(t *testing.T) {
	s, local, ok := splitShardID(shardTicket(3, "sub-000017"))
	if !ok || s != 3 || local != "sub-000017" {
		t.Fatalf("round trip gave (%d, %q, %v)", s, local, ok)
	}
	for _, bad := range []string{"x:000001", "sub-000001", "s:abc", "sx:1", ""} {
		if _, _, ok := splitShardID(bad); ok {
			t.Fatalf("splitShardID(%q) should fail", bad)
		}
	}
}

// TestLocalRouting: participants land on their hash-homed shards, local
// wants clear without the coordinator, and federation tickets resolve with
// rewritten IDs.
func TestLocalRouting(t *testing.T) {
	m, err := Open(Config{Shards: 4, Platform: core.Options{Design: testDesign}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	const shard = 2
	buyer := nameOn(t, "b", shard, 4)
	seller := nameOn(t, "s", shard, 4)
	btk := mustTk(m.SubmitRegister(buyer, 5000))
	if !strings.HasPrefix(btk, fmt.Sprintf("s%d:", shard)) {
		t.Fatalf("buyer ticket %s not on home shard %d", btk, shard)
	}
	openShare(t, m, seller, seller+"/d0", flatRel(seller+"/d0", 20))
	m.TriggerEpoch()

	w, f := coverWant(buyer, 150, "a", "b")
	rtk := mustTk(m.SubmitRequest(w, f))
	if !strings.HasPrefix(rtk, fmt.Sprintf("s%d:", shard)) {
		t.Fatalf("local want ticket %s routed off the home shard", rtk)
	}
	m.TriggerEpoch()
	tk, ok := m.Ticket(rtk)
	if !ok || tk.Status != engine.TicketDone {
		t.Fatalf("local want did not settle: %+v", tk)
	}
	if !strings.HasPrefix(tk.TxID, fmt.Sprintf("s%d:", shard)) {
		t.Fatalf("settled TxID %q not rewritten to federation form", tk.TxID)
	}
	if bal, ok := m.Balance(seller); !ok || bal <= 0 {
		t.Fatalf("seller balance after local settle: %v (ok=%v)", bal, ok)
	}
	if pending, settled, _ := m.CoordStats(); pending != 0 || settled != 0 {
		t.Fatalf("coordinator touched a local want: pending=%d settled=%d", pending, settled)
	}
	// Only the two engaged shards saw work; the others idled in parallel.
	st := m.Stats()
	if st.Matched != 1 || st.Applied < 2 {
		t.Fatalf("aggregate stats wrong: %+v", st)
	}
}

// crossShardFixture stands up the canonical spanning workload: the buyer
// and seller A live on shard 0, seller B on shard 1, and the only mashup
// satisfying the want joins A's (k, a) with B's (k, b) across the shards.
type crossShardFixture struct {
	buyer, sellerA, sellerB string
	funds                   float64
}

func newCrossShardFixture(t *testing.T) crossShardFixture {
	return crossShardFixture{
		buyer:   nameOn(t, "buyer", 0, 2),
		sellerA: nameOn(t, "sellA", 0, 2),
		sellerB: nameOn(t, "sellB", 1, 2),
		funds:   5000,
	}
}

// drive registers and shares everything and runs one epoch; the spanning
// want is NOT submitted (callers control when).
func (fx crossShardFixture) drive(t *testing.T, m *Market) {
	t.Helper()
	mustTk(m.SubmitRegister(fx.buyer, fx.funds))
	openShare(t, m, fx.sellerA, fx.sellerA+"/d0", keyedRel(fx.sellerA+"/d0", "a", 20))
	openShare(t, m, fx.sellerB, fx.sellerB+"/d0", keyedRel(fx.sellerB+"/d0", "b", 30))
	m.TriggerEpoch()
}

func (fx crossShardFixture) submitSpanning(t *testing.T, m *Market) string {
	t.Helper()
	w, f := joinWant(fx.buyer, 900, "a", "b")
	tk := mustTk(m.SubmitRequest(w, f))
	if !strings.HasPrefix(tk, "x:") {
		t.Fatalf("spanning want got ticket %s, want coordinator ticket", tk)
	}
	return tk
}

// TestCrossShardSettlement: a want spanning two shard catalogs goes to the
// coordinator, settles via escrowed 2PC, pays the remote seller on its own
// shard's ledger, and conserves total supply across the federation.
func TestCrossShardSettlement(t *testing.T) {
	m, err := Open(Config{Shards: 2, Platform: core.Options{Design: testDesign}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	fx := newCrossShardFixture(t)
	fx.drive(t, m)
	supply := m.TotalSupply()

	tk := fx.submitSpanning(t, m)
	if _, counted := m.TriggerEpoch(); !counted {
		t.Fatal("epoch with a coordinator settle should count")
	}
	got, ok := m.Ticket(tk)
	if !ok || got.Status != engine.TicketDone {
		t.Fatalf("cross-shard want did not settle: %+v", got)
	}
	if got.TxID != "xtx-000001" {
		t.Fatalf("TxID %q, want xtx-000001", got.TxID)
	}
	if got.Price <= 0 {
		t.Fatalf("settled at price %v", got.Price)
	}

	buyerBal, _ := m.Balance(fx.buyer)
	if buyerBal >= ledger.FromFloat(fx.funds) {
		t.Fatalf("buyer balance %v did not decrease", buyerBal)
	}
	balA, _ := m.Balance(fx.sellerA)
	balB, _ := m.Balance(fx.sellerB)
	if balA <= 0 || balB <= 0 {
		t.Fatalf("seller cuts missing: A=%v B=%v", balA, balB)
	}
	if got := m.TotalSupply(); got != supply {
		t.Fatalf("supply %v after settle, want %v conserved", got, supply)
	}
	for _, sh := range m.Shards() {
		if i := sh.Platform.Arbiter.Ledger.VerifyChain(); i >= 0 {
			t.Fatalf("shard %d audit chain corrupt at %d", sh.Index, i)
		}
	}
	if sh0 := m.Shards()[0]; sh0.Engine.XTxInFlight() != 0 {
		t.Fatal("escrow left in flight after commit")
	}
	pending, settled, aborted := m.CoordStats()
	if pending != 0 || settled != 1 || aborted != 0 {
		t.Fatalf("coordinator counters: pending=%d settled=%d aborted=%d", pending, settled, aborted)
	}
	if st := m.Stats(); st.Matched != 1 {
		t.Fatalf("aggregate Matched = %d, want 1 (the cross-shard settle)", st.Matched)
	}
	// Reports against up-front-settled cross-shard transactions are refused.
	if _, err := m.SubmitReport("xtx-000001", 100, 100); err == nil {
		t.Fatal("report against an xtx should be refused")
	}
}

// TestUnmatchableSpanningWantStaysPending: a spanning want no mashup can
// satisfy yet survives rounds in the coordinator queue instead of failing.
func TestUnmatchableSpanningWantStaysPending(t *testing.T) {
	m, err := Open(Config{Shards: 2, Platform: core.Options{Design: testDesign}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	fx := newCrossShardFixture(t)
	fx.drive(t, m)

	// Offer far below any posted price: matches nothing, stays pending.
	w, f := joinWant(fx.buyer, 0.01, "a", "b")
	tk := mustTk(m.SubmitRequest(w, f))
	m.TriggerEpoch()
	m.TriggerEpoch()
	got, ok := m.Ticket(tk)
	if !ok || got.Status != engine.TicketQueued {
		t.Fatalf("unmatchable want should stay queued: %+v", got)
	}
	if pending, _, _ := m.CoordStats(); pending != 1 {
		t.Fatalf("pending wants = %d, want 1", pending)
	}
}

// TestSingleShardFederationMatchesBareEngine: with -shards 1 the federation
// is a pass-through — the underlying shard's state is byte-identical to a
// bare engine driven with the same submissions.
func TestSingleShardFederationMatchesBareEngine(t *testing.T) {
	ecfg := engine.Config{Shards: 4}
	drive := func(sub func(kind string, args ...interface{}) (string, error)) {
		// register / share / request in a fixed script, via either surface.
		mustPanic := func(id string, err error) {
			if err != nil {
				panic(err)
			}
			_ = id
		}
		mustPanic(sub("register", "b1", 5000.0))
		mustPanic(sub("register", "b2", 3000.0))
		mustPanic(sub("share", "s1", "s1/d0", 20))
		mustPanic(sub("epoch"))
		mustPanic(sub("request", "b1", 150.0))
		mustPanic(sub("epoch"))
		mustPanic(sub("request", "b2", 120.0))
		mustPanic(sub("epoch"))
	}

	m, err := Open(Config{Shards: 1, Engine: ecfg, Platform: core.Options{Design: testDesign}})
	if err != nil {
		t.Fatal(err)
	}
	drive(func(kind string, args ...interface{}) (string, error) {
		switch kind {
		case "register":
			return m.SubmitRegister(args[0].(string), args[1].(float64))
		case "share":
			return m.SubmitShare(args[0].(string), catalog.DatasetID(args[1].(string)),
				flatRel(args[1].(string), args[2].(int)),
				wtp.DatasetMeta{Dataset: args[1].(string), HasProvenance: true}, license.Terms{Kind: license.Open})
		case "request":
			w, f := coverWant(args[0].(string), args[1].(float64), "a", "b")
			return m.SubmitRequest(w, f)
		case "epoch":
			m.TriggerEpoch()
			return "", nil
		}
		panic(kind)
	})
	m.Stop()
	fedPrint := shardFingerprint(t, m.Shards()[0])

	p, err := core.NewPlatform(core.Options{Design: testDesign})
	if err != nil {
		t.Fatal(err)
	}
	// ShardLabel mirrors what the federation sets on its only shard — it is
	// observational only and must not (and does not) reach any logged byte.
	e := engine.New(p, engine.Config{Shards: 4, ShardLabel: "0"})
	drive(func(kind string, args ...interface{}) (string, error) {
		switch kind {
		case "register":
			return e.SubmitRegister(args[0].(string), args[1].(float64))
		case "share":
			return e.SubmitShare(args[0].(string), catalog.DatasetID(args[1].(string)),
				flatRel(args[1].(string), args[2].(int)),
				wtp.DatasetMeta{Dataset: args[1].(string), HasProvenance: true}, license.Terms{Kind: license.Open})
		case "request":
			w, f := coverWant(args[0].(string), args[1].(float64), "a", "b")
			return e.SubmitRequest(w, f)
		case "epoch":
			e.TriggerEpoch()
			return "", nil
		}
		panic(kind)
	})
	e.Stop()
	barePrint := shardFingerprint(t, &Shard{Index: 0, Platform: p, Engine: e})

	if string(fedPrint) != string(barePrint) {
		t.Fatalf("shards=1 federation diverged from bare engine:\n--- federation\n%s\n--- bare\n%s", fedPrint, barePrint)
	}
}

// TestShardLabeledMetrics: every shard's per-shard families carry the shard
// label, the unlabeled aggregates exist exactly once, and the federation's
// own families report the coordinator's activity.
func TestShardLabeledMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m, err := Open(Config{Shards: 2, Platform: core.Options{Design: testDesign}, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	fx := newCrossShardFixture(t)
	fx.drive(t, m)
	fx.submitSpanning(t, m)
	m.TriggerEpoch()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`engine_shard_epoch_seconds`,
		`shard="0"`,
		`shard="1"`,
		"engine_epochs_total",
		"engine_matched_total",
		"federation_xtx_committed_total 1",
		"federation_shards 2",
		"arbiter_round_seconds", // unlabeled histogram shared by both shard engines
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if strings.Count(text, "# TYPE engine_matched_total") != 1 {
		t.Error("aggregate family engine_matched_total registered more than once")
	}
	if st := m.Stats(); st.Matched != 1 {
		t.Fatalf("aggregate stats Matched = %d", st.Matched)
	}
}

// TestAggregateStatsSumShards: counters sum across shards and the
// coordinator's settles and queue fold into Matched/OpenRequests.
func TestAggregateStatsSumShards(t *testing.T) {
	m, err := Open(Config{Shards: 4, Platform: core.Options{Design: testDesign}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	// One local settle on each of two different shards.
	for _, shard := range []int{1, 3} {
		b := nameOn(t, fmt.Sprintf("b%d-", shard), shard, 4)
		s := nameOn(t, fmt.Sprintf("s%d-", shard), shard, 4)
		mustTk(m.SubmitRegister(b, 4000))
		openShare(t, m, s, s+"/d0", flatRel(s+"/d0", 20))
		m.TriggerEpoch()
		w, f := coverWant(b, 150, "a", "b")
		mustTk(m.SubmitRequest(w, f))
	}
	m.TriggerEpoch()
	st := m.Stats()
	if st.Matched != 2 {
		t.Fatalf("Matched = %d, want 2 (one per shard)", st.Matched)
	}
	if st.Applied < 4 {
		t.Fatalf("Applied = %d, want >= 4 across shards", st.Applied)
	}
	sums := m.ShardStats()
	if len(sums) != 4 {
		t.Fatalf("ShardStats returned %d entries", len(sums))
	}
	var matched uint64
	for _, s := range sums {
		matched += s.Matched
	}
	if matched != st.Matched {
		t.Fatalf("per-shard matched sum %d != aggregate %d", matched, st.Matched)
	}
}
