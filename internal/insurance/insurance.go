// Package insurance implements the data insurance market the paper sketches
// (§3.4, §7.1): "once a dataset has been assigned a price, it is possible to
// envision a data insurance market, where a different entity than the seller
// (i.e., the arbiter) takes liability for any legal problems caused by that
// data". Policies are priced from the dataset's market price and its
// residual re-identification risk (which the seller lowers by spending
// privacy budget); claims pay out from a premium-funded pool held in the
// market ledger.
package insurance

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/ledger"
)

// PoolAccount is the ledger account holding premiums and paying claims.
const PoolAccount = "insurance-pool"

// RiskProfile summarizes a dataset's breach/re-identification exposure.
type RiskProfile struct {
	// Epsilon is the differential-privacy budget already spent protecting
	// the dataset; higher epsilon = weaker protection = higher risk.
	Epsilon float64
	// HasDirectIdentifiers marks datasets that still carry direct PII.
	HasDirectIdentifiers bool
	// Records scales exposure with the number of affected individuals.
	Records int
}

// RiskScore maps a profile to [0,1]: the modeled probability that a claim
// event occurs during one policy period.
func (r RiskProfile) RiskScore() float64 {
	score := 0.02 // base rate
	if r.HasDirectIdentifiers {
		score += 0.25
	}
	// ε of 0 (never released raw) adds nothing; risk saturates by ε≈8.
	score += 0.1 * (1 - math.Exp(-r.Epsilon/4))
	// Volume factor saturates around 100k records.
	score += 0.1 * (1 - math.Exp(-float64(r.Records)/1e5))
	if score > 1 {
		score = 1
	}
	return score
}

// Policy insures one dataset sale.
type Policy struct {
	ID        string
	Dataset   string
	Holder    string // the insured party (seller or arbiter)
	Coverage  float64
	Premium   float64
	Risk      float64
	Active    bool
	ClaimPaid float64
}

// Insurer prices and manages policies against a market ledger.
type Insurer struct {
	mu sync.Mutex
	// LoadFactor is the premium markup over expected loss (>=1 keeps the
	// pool solvent in expectation).
	LoadFactor float64
	ledger     *ledger.Ledger
	policies   map[string]*Policy
	nextID     int
}

// New creates an insurer whose pool account lives in the given ledger.
func New(l *ledger.Ledger, loadFactor float64) (*Insurer, error) {
	if loadFactor < 1 {
		return nil, fmt.Errorf("insurance: load factor %v < 1 would be insolvent in expectation", loadFactor)
	}
	if err := l.Open(PoolAccount, 0); err != nil {
		return nil, err
	}
	return &Insurer{LoadFactor: loadFactor, ledger: l, policies: map[string]*Policy{}}, nil
}

// Quote prices a policy: premium = risk · coverage · load.
func (in *Insurer) Quote(risk RiskProfile, coverage float64) float64 {
	return risk.RiskScore() * coverage * in.LoadFactor
}

// Underwrite sells a policy to holder, moving the premium into the pool.
func (in *Insurer) Underwrite(dataset, holder string, risk RiskProfile, coverage float64) (*Policy, error) {
	if coverage <= 0 {
		return nil, fmt.Errorf("insurance: coverage must be positive")
	}
	premium := in.Quote(risk, coverage)
	in.mu.Lock()
	defer in.mu.Unlock()
	if err := in.ledger.Transfer(holder, PoolAccount, ledger.FromFloat(premium), "premium "+dataset); err != nil {
		return nil, err
	}
	in.nextID++
	p := &Policy{
		ID:       fmt.Sprintf("pol-%04d", in.nextID),
		Dataset:  dataset,
		Holder:   holder,
		Coverage: coverage,
		Premium:  premium,
		Risk:     risk.RiskScore(),
		Active:   true,
	}
	in.policies[p.ID] = p
	return p, nil
}

// Claim pays out up to the remaining coverage for a loss event (e.g. a
// de-anonymization despite the seller's best efforts, §7.1). Payouts are
// limited by pool solvency: the pool never overdrafts.
func (in *Insurer) Claim(policyID string, loss float64) (paid float64, err error) {
	if loss <= 0 {
		return 0, fmt.Errorf("insurance: loss must be positive")
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	p, ok := in.policies[policyID]
	if !ok {
		return 0, fmt.Errorf("insurance: no policy %q", policyID)
	}
	if !p.Active {
		return 0, fmt.Errorf("insurance: policy %q inactive", policyID)
	}
	remaining := p.Coverage - p.ClaimPaid
	pay := loss
	if pay > remaining {
		pay = remaining
	}
	pool := in.ledger.Balance(PoolAccount).Float()
	if pay > pool {
		pay = pool
	}
	if pay <= 0 {
		return 0, fmt.Errorf("insurance: policy %q exhausted or pool empty", policyID)
	}
	if err := in.ledger.Transfer(PoolAccount, p.Holder, ledger.FromFloat(pay), "claim "+policyID); err != nil {
		return 0, err
	}
	p.ClaimPaid += pay
	if p.ClaimPaid >= p.Coverage {
		p.Active = false
	}
	return pay, nil
}

// Cancel deactivates a policy without refund.
func (in *Insurer) Cancel(policyID string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	p, ok := in.policies[policyID]
	if !ok {
		return fmt.Errorf("insurance: no policy %q", policyID)
	}
	p.Active = false
	return nil
}

// Policy returns a policy by ID.
func (in *Insurer) Policy(policyID string) (*Policy, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	p, ok := in.policies[policyID]
	if !ok {
		return nil, fmt.Errorf("insurance: no policy %q", policyID)
	}
	return p, nil
}

// PoolBalance returns the premium pool's current funds.
func (in *Insurer) PoolBalance() float64 {
	return in.ledger.Balance(PoolAccount).Float()
}

// ExpectedLoss returns the expected payout across active policies — the
// solvency check an arbiter runs before underwriting more risk.
func (in *Insurer) ExpectedLoss() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var sum float64
	for _, p := range in.policies {
		if p.Active {
			sum += p.Risk * (p.Coverage - p.ClaimPaid)
		}
	}
	return sum
}
