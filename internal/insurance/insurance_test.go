package insurance

import (
	"math"
	"testing"

	"repro/internal/ledger"
)

func mkLedger(t *testing.T) *ledger.Ledger {
	t.Helper()
	l := ledger.New()
	for _, a := range []string{"seller", "arbiter"} {
		if err := l.Open(a, ledger.FromFloat(1000)); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestRiskScoreMonotone(t *testing.T) {
	low := RiskProfile{Epsilon: 0.1, Records: 100}
	high := RiskProfile{Epsilon: 8, Records: 100}
	if low.RiskScore() >= high.RiskScore() {
		t.Errorf("more epsilon spent must mean more risk: %v vs %v", low.RiskScore(), high.RiskScore())
	}
	pii := RiskProfile{Epsilon: 0.1, Records: 100, HasDirectIdentifiers: true}
	if pii.RiskScore() <= low.RiskScore() {
		t.Error("direct identifiers must raise risk")
	}
	if s := (RiskProfile{Epsilon: 1000, Records: 1 << 40, HasDirectIdentifiers: true}).RiskScore(); s > 1 {
		t.Errorf("risk must cap at 1, got %v", s)
	}
}

func TestUnderwriteAndQuote(t *testing.T) {
	l := mkLedger(t)
	in, err := New(l, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	risk := RiskProfile{Epsilon: 2, Records: 5000}
	q := in.Quote(risk, 500)
	want := risk.RiskScore() * 500 * 1.2
	if math.Abs(q-want) > 1e-9 {
		t.Errorf("quote = %v, want %v", q, want)
	}
	p, err := in.Underwrite("workforce", "seller", risk, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Active || p.Premium != q {
		t.Errorf("policy = %+v", p)
	}
	if got := in.PoolBalance(); math.Abs(got-q) > 0.001 {
		t.Errorf("pool = %v, want premium %v", got, q)
	}
	if math.Abs(l.Balance("seller").Float()-(1000-q)) > 0.001 {
		t.Errorf("seller balance = %v", l.Balance("seller"))
	}
	if _, err := in.Underwrite("x", "seller", risk, -5); err == nil {
		t.Error("negative coverage must fail")
	}
	if _, err := New(l, 0.5); err == nil {
		t.Error("load factor < 1 must be rejected")
	}
}

func TestClaimLifecycle(t *testing.T) {
	l := mkLedger(t)
	in, _ := New(l, 1.5)
	// Seed the pool with several premiums so claims can pay.
	risk := RiskProfile{Epsilon: 6, Records: 50000, HasDirectIdentifiers: true}
	p, err := in.Underwrite("d1", "seller", risk, 300)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Underwrite("d2", "arbiter", risk, 300); err != nil {
		t.Fatal(err)
	}
	pool := in.PoolBalance()
	paid, err := in.Claim(p.ID, 100)
	if err != nil {
		t.Fatal(err)
	}
	if paid != 100 && paid != pool { // pool-limited or full
		t.Errorf("paid = %v", paid)
	}
	got, _ := in.Policy(p.ID)
	if got.ClaimPaid != paid {
		t.Errorf("claim paid recorded = %v", got.ClaimPaid)
	}
	// Coverage exhaustion deactivates.
	for i := 0; i < 10; i++ {
		if _, err := in.Claim(p.ID, 1000); err != nil {
			break
		}
	}
	got, _ = in.Policy(p.ID)
	if got.ClaimPaid > got.Coverage+1e-9 {
		t.Errorf("paid %v beyond coverage %v", got.ClaimPaid, got.Coverage)
	}
	if _, err := in.Claim("pol-9999", 10); err == nil {
		t.Error("unknown policy must fail")
	}
	if _, err := in.Claim(p.ID, -1); err == nil {
		t.Error("negative loss must fail")
	}
}

func TestPoolNeverOverdrafts(t *testing.T) {
	l := mkLedger(t)
	in, _ := New(l, 1.0)
	risk := RiskProfile{Epsilon: 0.01, Records: 10}
	p, err := in.Underwrite("d", "seller", risk, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny premium, huge claim: payout capped by pool.
	paid, err := in.Claim(p.ID, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if paid > p.Premium+1e-5 { // currency micro-unit rounding
		t.Errorf("paid %v exceeds pool %v", paid, p.Premium)
	}
	if in.PoolBalance() < -1e-9 {
		t.Errorf("pool overdrafted: %v", in.PoolBalance())
	}
}

func TestExpectedLossAndCancel(t *testing.T) {
	l := mkLedger(t)
	in, _ := New(l, 1.3)
	risk := RiskProfile{Epsilon: 4, Records: 1000}
	p, _ := in.Underwrite("d", "seller", risk, 200)
	el := in.ExpectedLoss()
	want := risk.RiskScore() * 200
	if math.Abs(el-want) > 1e-9 {
		t.Errorf("expected loss = %v, want %v", el, want)
	}
	if err := in.Cancel(p.ID); err != nil {
		t.Fatal(err)
	}
	if in.ExpectedLoss() != 0 {
		t.Error("cancelled policy carries no expected loss")
	}
	if _, err := in.Claim(p.ID, 10); err == nil {
		t.Error("claim on cancelled policy must fail")
	}
	if err := in.Cancel("nope"); err == nil {
		t.Error("unknown cancel must fail")
	}
}
