package fusion

import (
	"testing"

	"repro/internal/relation"
)

func BenchmarkAlign(b *testing.B) {
	_, srcs := mkWeather(365, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Align("day", []string{"temp"}, srcs...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTruthDiscoveryFit(b *testing.B) {
	_, srcs := mkWeather(365, 2)
	fused, err := Align("day", []string{"temp"}, srcs...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		td := NewTruthDiscovery()
		td.Fit(fused)
	}
}

func BenchmarkResolveMajority(b *testing.B) {
	_, srcs := mkWeather(365, 3)
	fused, _ := Align("day", []string{"temp"}, srcs...)
	kinds := map[string]relation.Kind{"temp": relation.KindFloat}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Resolve(fused, MajorityVote{}, kinds)
	}
}
