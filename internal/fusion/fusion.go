// Package fusion implements the data fusion operators of the Mashup Builder
// (paper §1, §5.3): operators that "produce relations that break the first
// normal form, that is, each cell value may be multi-valued, with each value
// coming from a differing source". Buyers who want to contrast weather
// signals from a city dataset, a sensor and a phone get an aligned multi-
// valued relation; resolution strategies (keep-all, majority vote, and an
// iterative source-accuracy-weighted truth discovery in the TruthFinder
// family) collapse it back to 1NF when asked.
package fusion

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/relation"
)

// Source pairs a source identifier with a relation contributing a signal.
type Source struct {
	Name string
	Rel  *relation.Relation
}

// Align fuses the given sources on a shared key column: the output has one
// row per key value observed anywhere, the key column, and one multi-valued
// cell per value column collecting each source's observation tagged with the
// source name. Sources missing a key contribute nothing for that row.
func Align(key string, valueCols []string, sources ...Source) (*relation.Relation, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("fusion: no sources")
	}
	for _, s := range sources {
		if !s.Rel.Schema.Has(key) {
			return nil, fmt.Errorf("fusion: source %q lacks key column %q", s.Name, key)
		}
		for _, vc := range valueCols {
			if !s.Rel.Schema.Has(vc) {
				return nil, fmt.Errorf("fusion: source %q lacks value column %q", s.Name, vc)
			}
		}
	}
	keyKind := sources[0].Rel.Schema.KindOf(key)
	schema := relation.Schema{relation.Col(key, keyKind)}
	for _, vc := range valueCols {
		schema = append(schema, relation.Col(vc, relation.KindMulti))
	}
	out := relation.New("fused", schema)

	type cellSet map[string][]relation.Sourced // value column -> observations
	rows := map[string]cellSet{}
	keyVal := map[string]relation.Value{}
	var order []string

	for _, s := range sources {
		ki := s.Rel.Schema.IndexOf(key)
		vis := make([]int, len(valueCols))
		for i, vc := range valueCols {
			vis[i] = s.Rel.Schema.IndexOf(vc)
		}
		for _, row := range s.Rel.Rows {
			kv := row[ki]
			if kv.IsNull() {
				continue
			}
			kk := kv.Key()
			cs, ok := rows[kk]
			if !ok {
				cs = cellSet{}
				rows[kk] = cs
				keyVal[kk] = kv
				order = append(order, kk)
			}
			for i, vc := range valueCols {
				v := row[vis[i]]
				if v.IsNull() {
					continue
				}
				cs[vc] = append(cs[vc], relation.Sourced{Source: s.Name, Value: v})
			}
		}
	}

	for _, kk := range order {
		row := make([]relation.Value, len(schema))
		row[0] = keyVal[kk]
		for i, vc := range valueCols {
			row[i+1] = relation.Multi(rows[kk][vc]...)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Resolver collapses a multi-valued cell to a single value.
type Resolver interface {
	// Resolve picks a value from the observations (possibly none).
	Resolve(obs []relation.Sourced) relation.Value
	// Name identifies the strategy.
	Name() string
}

// Resolve applies the resolver to every multi column of a fused relation,
// returning a 1NF relation. Non-multi columns pass through.
func Resolve(fused *relation.Relation, res Resolver, outKinds map[string]relation.Kind) *relation.Relation {
	schema := fused.Schema.Clone()
	for i := range schema {
		if schema[i].Kind == relation.KindMulti {
			k, ok := outKinds[schema[i].Name]
			if !ok {
				k = relation.KindFloat
			}
			schema[i].Kind = k
		}
	}
	it := relation.NewMapRows(relation.NewScan(fused), schema, func(row []relation.Value) []relation.Value {
		nr := make([]relation.Value, len(row))
		for i, v := range row {
			if fused.Schema[i].Kind == relation.KindMulti {
				nr[i] = res.Resolve(v.AsMulti())
			} else {
				nr[i] = v
			}
		}
		return nr
	})
	out, _ := relation.Materialize(it)
	out.Name = fused.Name + "_" + res.Name()
	return out
}

// MajorityVote resolves to the most frequent value (ties to smallest source).
type MajorityVote struct{}

// Resolve implements Resolver.
func (MajorityVote) Resolve(obs []relation.Sourced) relation.Value {
	return relation.Multi(obs...).FlattenMulti()
}

// Name implements Resolver.
func (MajorityVote) Name() string { return "majority" }

// MeanResolver averages numeric observations.
type MeanResolver struct{}

// Resolve implements Resolver.
func (MeanResolver) Resolve(obs []relation.Sourced) relation.Value {
	var sum float64
	n := 0
	for _, o := range obs {
		if o.Value.IsNumeric() {
			sum += o.Value.AsFloat()
			n++
		}
	}
	if n == 0 {
		return relation.Null()
	}
	return relation.Float(sum / float64(n))
}

// Name implements Resolver.
func (MeanResolver) Name() string { return "mean" }

// PreferSource resolves to the named source's observation, falling back to
// majority vote.
type PreferSource struct{ Source string }

// Resolve implements Resolver.
func (p PreferSource) Resolve(obs []relation.Sourced) relation.Value {
	for _, o := range obs {
		if o.Source == p.Source {
			return o.Value
		}
	}
	return relation.Multi(obs...).FlattenMulti()
}

// Name implements Resolver.
func (p PreferSource) Name() string { return "prefer_" + p.Source }

// TruthDiscovery estimates per-source accuracy iteratively and resolves each
// cell to the value with the highest summed source trust — the classic
// truth-discovery fixpoint (paper §8.3 "Data Fusion and Truth Discovery").
type TruthDiscovery struct {
	Iterations int
	// Trust holds the learned per-source weights after Fit.
	Trust map[string]float64
}

// NewTruthDiscovery creates a resolver with default iteration count.
func NewTruthDiscovery() *TruthDiscovery {
	return &TruthDiscovery{Iterations: 10, Trust: map[string]float64{}}
}

// Fit learns source trust from a fused relation: sources agreeing with the
// (trust-weighted) consensus gain weight. Must be called before Resolve.
func (td *TruthDiscovery) Fit(fused *relation.Relation) {
	// Initialize uniform trust.
	td.Trust = map[string]float64{}
	var cells [][]relation.Sourced
	for _, row := range fused.Rows {
		for i, v := range row {
			if fused.Schema[i].Kind != relation.KindMulti {
				continue
			}
			obs := v.AsMulti()
			if len(obs) > 0 {
				cells = append(cells, obs)
			}
			for _, o := range obs {
				td.Trust[o.Source] = 1
			}
		}
	}
	if len(cells) == 0 {
		return
	}
	iters := td.Iterations
	if iters <= 0 {
		iters = 10
	}
	for it := 0; it < iters; it++ {
		// E-step: per cell, pick the trust-weighted winning value.
		correct := map[string]float64{}
		total := map[string]float64{}
		for _, obs := range cells {
			winner := td.weightedWinner(obs)
			for _, o := range obs {
				total[o.Source]++
				if o.Value.Equal(winner) {
					correct[o.Source]++
				}
			}
		}
		// M-step: trust = smoothed accuracy.
		for s := range td.Trust {
			if total[s] > 0 {
				td.Trust[s] = (correct[s] + 0.5) / (total[s] + 1)
			}
		}
	}
}

func (td *TruthDiscovery) weightedWinner(obs []relation.Sourced) relation.Value {
	scores := map[string]float64{}
	rep := map[string]relation.Value{}
	for _, o := range obs {
		w := td.Trust[o.Source]
		if w == 0 {
			w = 0.5
		}
		k := o.Value.Key()
		scores[k] += w
		if _, ok := rep[k]; !ok {
			rep[k] = o.Value
		}
	}
	bestK, bestS := "", math.Inf(-1)
	keys := make([]string, 0, len(scores))
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if scores[k] > bestS {
			bestK, bestS = k, scores[k]
		}
	}
	if bestK == "" {
		return relation.Null()
	}
	return rep[bestK]
}

// Resolve implements Resolver using the learned trust.
func (td *TruthDiscovery) Resolve(obs []relation.Sourced) relation.Value {
	if len(obs) == 0 {
		return relation.Null()
	}
	return td.weightedWinner(obs)
}

// Name implements Resolver.
func (td *TruthDiscovery) Name() string { return "truthdiscovery" }

// Disagreement scores a fused relation's conflict level: the fraction of
// multi cells whose observations are not all equal. Buyers may inspect this
// before deciding whether to buy contrasting signals.
func Disagreement(fused *relation.Relation) float64 {
	cells, conflicts := 0, 0
	for _, row := range fused.Rows {
		for i, v := range row {
			if fused.Schema[i].Kind != relation.KindMulti {
				continue
			}
			obs := v.AsMulti()
			if len(obs) < 2 {
				continue
			}
			cells++
			for _, o := range obs[1:] {
				if !o.Value.Equal(obs[0].Value) {
					conflicts++
					break
				}
			}
		}
	}
	if cells == 0 {
		return 0
	}
	return float64(conflicts) / float64(cells)
}
