package fusion

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// mkWeather builds three weather sources over shared days: city (accurate),
// sensor (accurate), phone (noisy/wrong often).
func mkWeather(days int, seed int64) (truth []float64, sources []Source) {
	rng := rand.New(rand.NewSource(seed))
	mk := func(name string) *relation.Relation {
		return relation.New(name, relation.NewSchema(
			relation.Col("day", relation.KindInt),
			relation.Col("temp", relation.KindFloat),
		))
	}
	city, sensor, phone := mk("city"), mk("sensor"), mk("phone")
	for d := 0; d < days; d++ {
		tv := float64(10 + d%15)
		truth = append(truth, tv)
		city.MustAppend(relation.Int(int64(d)), relation.Float(tv))
		sensor.MustAppend(relation.Int(int64(d)), relation.Float(tv))
		pv := tv
		if rng.Float64() < 0.8 {
			pv = tv + 5 // systematically wrong
		}
		phone.MustAppend(relation.Int(int64(d)), relation.Float(pv))
	}
	sources = []Source{{"city", city}, {"sensor", sensor}, {"phone", phone}}
	return truth, sources
}

func TestAlignProducesMultiCells(t *testing.T) {
	_, srcs := mkWeather(10, 1)
	fused, err := Align("day", []string{"temp"}, srcs...)
	if err != nil {
		t.Fatal(err)
	}
	if fused.NumRows() != 10 {
		t.Fatalf("rows = %d", fused.NumRows())
	}
	if fused.Schema.KindOf("temp") != relation.KindMulti {
		t.Fatal("temp must be a multi column")
	}
	obs := fused.Rows[0][1].AsMulti()
	if len(obs) != 3 {
		t.Fatalf("observations = %d, want 3 sources", len(obs))
	}
	names := map[string]bool{}
	for _, o := range obs {
		names[o.Source] = true
	}
	if !names["city"] || !names["sensor"] || !names["phone"] {
		t.Errorf("sources = %v", names)
	}
}

func TestAlignErrors(t *testing.T) {
	if _, err := Align("day", nil); err == nil {
		t.Error("no sources must fail")
	}
	r := relation.New("x", relation.NewSchema(relation.Col("a", relation.KindInt)))
	if _, err := Align("day", []string{"temp"}, Source{"x", r}); err == nil {
		t.Error("missing key column must fail")
	}
}

func TestAlignPartialKeys(t *testing.T) {
	a := relation.New("a", relation.NewSchema(
		relation.Col("k", relation.KindInt), relation.Col("v", relation.KindFloat)))
	a.MustAppend(relation.Int(1), relation.Float(10))
	b := relation.New("b", relation.NewSchema(
		relation.Col("k", relation.KindInt), relation.Col("v", relation.KindFloat)))
	b.MustAppend(relation.Int(1), relation.Float(11))
	b.MustAppend(relation.Int(2), relation.Float(22))
	fused, err := Align("k", []string{"v"}, Source{"a", a}, Source{"b", b})
	if err != nil {
		t.Fatal(err)
	}
	if fused.NumRows() != 2 {
		t.Fatalf("rows = %d, want union of keys", fused.NumRows())
	}
	// Key 2 has only b's observation.
	for _, row := range fused.Rows {
		if row[0].AsInt() == 2 && len(row[1].AsMulti()) != 1 {
			t.Errorf("key 2 observations = %d", len(row[1].AsMulti()))
		}
	}
}

func TestMajorityVoteResolver(t *testing.T) {
	truth, srcs := mkWeather(30, 2)
	fused, _ := Align("day", []string{"temp"}, srcs...)
	resolved := Resolve(fused, MajorityVote{}, map[string]relation.Kind{"temp": relation.KindFloat})
	// city+sensor outvote phone everywhere.
	correct := 0
	for i, row := range resolved.Rows {
		if math.Abs(row[1].AsFloat()-truth[row[0].AsInt()]) < 1e-9 {
			correct++
		}
		_ = i
	}
	if correct != 30 {
		t.Errorf("majority correct = %d/30", correct)
	}
	if resolved.Schema.KindOf("temp") != relation.KindFloat {
		t.Error("resolved column must be 1NF float")
	}
}

func TestMeanAndPreferResolvers(t *testing.T) {
	obs := []relation.Sourced{
		{Source: "a", Value: relation.Float(10)},
		{Source: "b", Value: relation.Float(20)},
	}
	if got := (MeanResolver{}).Resolve(obs); got.AsFloat() != 15 {
		t.Errorf("mean = %v", got)
	}
	if !(MeanResolver{}).Resolve(nil).IsNull() {
		t.Error("mean of nothing is NULL")
	}
	if got := (PreferSource{Source: "b"}).Resolve(obs); got.AsFloat() != 20 {
		t.Errorf("prefer b = %v", got)
	}
	if got := (PreferSource{Source: "zz"}).Resolve(obs); got.IsNull() {
		t.Error("missing preferred source falls back to majority")
	}
}

func TestTruthDiscoveryDowngradesBadSource(t *testing.T) {
	truth, srcs := mkWeather(60, 3)
	fused, _ := Align("day", []string{"temp"}, srcs...)
	td := NewTruthDiscovery()
	td.Fit(fused)
	if td.Trust["phone"] >= td.Trust["city"] {
		t.Errorf("trust: phone=%v city=%v; phone must rank below", td.Trust["phone"], td.Trust["city"])
	}
	resolved := Resolve(fused, td, map[string]relation.Kind{"temp": relation.KindFloat})
	correct := 0
	for _, row := range resolved.Rows {
		if math.Abs(row[1].AsFloat()-truth[row[0].AsInt()]) < 1e-9 {
			correct++
		}
	}
	if correct < 55 {
		t.Errorf("truth discovery correct = %d/60", correct)
	}
}

func TestDisagreement(t *testing.T) {
	_, srcs := mkWeather(50, 4)
	fused, _ := Align("day", []string{"temp"}, srcs...)
	d := Disagreement(fused)
	// Phone is wrong ~80% of the time → ~80% of cells conflict.
	if d < 0.6 || d > 0.95 {
		t.Errorf("disagreement = %v, want ~0.8", d)
	}
	// Perfectly agreeing sources: 0.
	a := relation.New("a", relation.NewSchema(
		relation.Col("k", relation.KindInt), relation.Col("v", relation.KindFloat)))
	a.MustAppend(relation.Int(1), relation.Float(5))
	fusedSame, _ := Align("k", []string{"v"}, Source{"x", a}, Source{"y", a.Clone()})
	if got := Disagreement(fusedSame); got != 0 {
		t.Errorf("agreeing disagreement = %v", got)
	}
}

func TestTruthDiscoveryEmpty(t *testing.T) {
	td := NewTruthDiscovery()
	empty := relation.New("e", relation.NewSchema(relation.Col("v", relation.KindMulti)))
	td.Fit(empty)
	if !td.Resolve(nil).IsNull() {
		t.Error("resolving nothing is NULL")
	}
}
