package sim

import (
	"math"
	"math/rand"

	"repro/internal/market"
)

// ExPostMetrics extends Metrics with audit accounting for the ex-post
// protocol (paper §3.2.2.2): buyers get data before paying and then report
// their realized value; audits with penalties make honesty optimal.
type ExPostMetrics struct {
	Metrics
	Audits        int
	CaughtCheats  int
	PenaltiesPaid float64
	// UnderReportRate is the fraction of reports below true value.
	UnderReportRate float64
}

// RunExPost simulates the ex-post protocol: each round every agent receives
// the data and reports a value according to their behaviour — truthful
// agents report truthfully, strategic agents under-report by the shade
// factor, adversarial coalition members coordinate on near-zero reports,
// ignorant agents report noisily. The arbiter audits each report with
// mech.AuditProb; caught under-reporting pays true value plus penalty.
func RunExPost(cfg Config, mech market.ExPost) ExPostMetrics {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	agents := makePopulation(cfg, rng)

	met := ExPostMetrics{Metrics: Metrics{
		Design:            mech.Name(),
		Mix:               MixLabel(cfg.Mix),
		Rounds:            cfg.Rounds,
		UtilityByBehavior: map[Behavior]float64{},
	}}
	utilSum := map[Behavior]float64{}
	utilN := map[Behavior]int{}
	reports := 0
	under := 0

	for round := 0; round < cfg.Rounds; round++ {
		for i := range agents {
			v := cfg.ValueMean + cfg.ValueStd*rng.NormFloat64()
			if v < 1 {
				v = 1
			}
			agents[i].value = v
		}
		// Reports per behaviour; Offer is the report in the ex-post setting.
		bids := makeBids(cfg, agents, rng)
		// Pre-draw audits so the mechanism stays deterministic given rng.
		audited := make([]bool, len(bids))
		for i := range audited {
			audited[i] = rng.Float64() < mech.AuditProb
		}
		outs, revenue := mech.RunAudited(bids, func(i int) bool { return audited[i] })
		met.Revenue += revenue
		met.Volume += len(outs)
		for i, ao := range outs {
			a := agents[i]
			reports++
			if bids[i].Offer < bids[i].True-1e-9 {
				under++
			}
			if ao.Audited {
				met.Audits++
				if ao.Shortfall > 0 {
					met.CaughtCheats++
					met.PenaltiesPaid += ao.Penalty
				}
			}
			u := a.value - ao.Sale.Price
			met.Welfare += a.value
			utilSum[a.behavior] += u
			utilN[a.behavior]++
		}
	}
	for b, s := range utilSum {
		if utilN[b] > 0 {
			met.UtilityByBehavior[b] = s / float64(utilN[b])
		}
	}
	met.TruthfulPremium = met.UtilityByBehavior[Truthful] - met.UtilityByBehavior[Strategic]
	if reports > 0 {
		met.UnderReportRate = float64(under) / float64(reports)
	}
	return met
}

// DynamicConfig parameterizes the streaming-arrival simulation: buyers and
// datasets arrive over time (the dynamic-arrival market of the paper's §8.2
// related work) and unmatched buyers wait with limited patience.
type DynamicConfig struct {
	Rounds int
	// BuyerArrivalRate is the expected buyers arriving per round.
	BuyerArrivalRate float64
	// SellerArrivalRate is the expected datasets arriving per round.
	SellerArrivalRate float64
	// Patience is how many rounds a buyer waits before leaving unserved.
	Patience int
	// MatchProb is the probability a present dataset satisfies a waiting
	// buyer in a given round (per pair, capped at one match per buyer).
	MatchProb float64
	Seed      int64
}

// DynamicMetrics summarizes a streaming run.
type DynamicMetrics struct {
	Arrived   int
	Served    int
	Abandoned int
	// MeanWait is the average rounds a served buyer waited.
	MeanWait float64
	// PeakQueue is the largest number of simultaneously waiting buyers.
	PeakQueue int
}

// ServiceRate is served/arrived.
func (m DynamicMetrics) ServiceRate() float64 {
	if m.Arrived == 0 {
		return 0
	}
	return float64(m.Served) / float64(m.Arrived)
}

// RunDynamic simulates dynamic arrival: a thin early market (few datasets)
// starves early buyers; as supply accumulates the service rate climbs —
// quantifying why "insufficient number of participants make trade
// inefficient" and how accumulated supply fixes it.
func RunDynamic(cfg DynamicConfig) DynamicMetrics {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Patience < 1 {
		cfg.Patience = 3
	}
	type waiting struct{ since int }
	var queue []waiting
	datasets := 0
	var met DynamicMetrics
	var waitSum int

	poisson := func(lambda float64) int {
		// Knuth's method; the lambdas here are small.
		threshold := math.Exp(-lambda)
		k := 0
		p := rng.Float64()
		for p > threshold {
			k++
			p *= rng.Float64()
		}
		return k
	}

	for round := 0; round < cfg.Rounds; round++ {
		datasets += poisson(cfg.SellerArrivalRate)
		arrivals := poisson(cfg.BuyerArrivalRate)
		met.Arrived += arrivals
		for i := 0; i < arrivals; i++ {
			queue = append(queue, waiting{since: round})
		}
		if len(queue) > met.PeakQueue {
			met.PeakQueue = len(queue)
		}
		// Match attempts: each waiting buyer is served if any dataset hits.
		var still []waiting
		for _, w := range queue {
			pNone := 1.0
			for d := 0; d < datasets; d++ {
				pNone *= 1 - cfg.MatchProb
			}
			if rng.Float64() < 1-pNone {
				met.Served++
				waitSum += round - w.since
				continue
			}
			if round-w.since >= cfg.Patience {
				met.Abandoned++
				continue
			}
			still = append(still, w)
		}
		queue = still
	}
	if met.Served > 0 {
		met.MeanWait = float64(waitSum) / float64(met.Served)
	}
	return met
}
