package sim

import (
	"testing"

	"repro/internal/market"
)

func baseCfg() Config {
	return Config{Rounds: 60, NumBuyers: 30, ValueMean: 100, ValueStd: 25, Seed: 42}
}

func TestRunTruthfulVickrey(t *testing.T) {
	cfg := baseCfg()
	cfg.Supply = 1
	m := Run(cfg, market.SecondPrice{})
	if m.Volume != cfg.Rounds {
		t.Errorf("volume = %d, want one sale per round", m.Volume)
	}
	if m.Efficiency < 0.99 {
		t.Errorf("all-truthful vickrey must be ~fully efficient, got %v", m.Efficiency)
	}
	if m.OverpayRate != 0 {
		t.Errorf("truthful vickrey never overpays, got %v", m.OverpayRate)
	}
	if m.Revenue <= 0 || m.Welfare <= 0 {
		t.Error("revenue/welfare must be positive")
	}
}

func TestStrategicShadingLosesUnderVickrey(t *testing.T) {
	cfg := baseCfg()
	cfg.Supply = 1
	cfg.Mix = map[Behavior]float64{Truthful: 0.5, Strategic: 0.5}
	m := Run(cfg, market.SecondPrice{})
	if m.TruthfulPremium <= 0 {
		t.Errorf("vickrey is incentive compatible: truthful premium = %v", m.TruthfulPremium)
	}
}

func TestRiskLoverOverpaysUnderGSP(t *testing.T) {
	cfg := baseCfg()
	cfg.Supply = 2
	cfg.Mix = map[Behavior]float64{Truthful: 0.5, RiskLover: 0.5}
	m := Run(cfg, GSPWrapper{})
	if m.OverpayRate == 0 {
		t.Error("risk lovers bidding 1.3x under GSP must sometimes pay above value")
	}
	if m.UtilityByBehavior[RiskLover] >= m.UtilityByBehavior[Truthful] {
		t.Errorf("risk lover utility %v must trail truthful %v",
			m.UtilityByBehavior[RiskLover], m.UtilityByBehavior[Truthful])
	}
}

// GSPWrapper adapts market.GSP (struct with no config).
type GSPWrapper = market.GSP

func TestCoalitionSuppressesVickreyRevenue(t *testing.T) {
	cfg := baseCfg()
	cfg.Supply = 1
	res := CoalitionSweep(cfg, market.SecondPrice{}, []float64{0, 0.5})
	if len(res) != 2 {
		t.Fatal("sweep size")
	}
	if res[1].Revenue >= res[0].Revenue {
		t.Errorf("coalition at 50%% must cut revenue: %v -> %v", res[0].Revenue, res[1].Revenue)
	}
}

func TestPostedPriceImmuneToCoalition(t *testing.T) {
	cfg := baseCfg()
	// With a posted price, coordinated low bids only remove the coalition
	// from trade; price per sale is unchanged.
	res := CoalitionSweep(cfg, market.PostedPrice{P: 80}, []float64{0, 0.4})
	perSale0 := res[0].Revenue / float64(res[0].Volume)
	perSale1 := res[1].Revenue / float64(res[1].Volume)
	if perSale0 != perSale1 {
		t.Errorf("posted per-sale price must not move: %v vs %v", perSale0, perSale1)
	}
	if res[1].Volume >= res[0].Volume {
		t.Errorf("coalition abstains, volume should drop: %d -> %d", res[0].Volume, res[1].Volume)
	}
}

func TestCompareDesigns(t *testing.T) {
	cfg := baseCfg()
	mechs := []market.Mechanism{
		market.PostedPrice{P: 100},
		market.RSOP{Seed: 1},
	}
	res := CompareDesigns(cfg, mechs)
	if len(res) != 2 {
		t.Fatal("result size")
	}
	// RSOP adapts to the value distribution; a posted price at the mean
	// loses roughly half the buyers. RSOP should move more volume.
	if res[1].Volume <= res[0].Volume {
		t.Errorf("rsop volume %d should exceed posted-at-mean %d", res[1].Volume, res[0].Volume)
	}
	for _, m := range res {
		if m.String() == "" {
			t.Error("metrics must render")
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := baseCfg()
	cfg.Mix = map[Behavior]float64{Truthful: 0.4, Ignorant: 0.3, Faulty: 0.3}
	a := Run(cfg, market.RSOP{Seed: 2})
	b := Run(cfg, market.RSOP{Seed: 2})
	if a.Revenue != b.Revenue || a.Volume != b.Volume {
		t.Error("same seed must reproduce exactly")
	}
}

func TestMixLabelStable(t *testing.T) {
	m1 := MixLabel(map[Behavior]float64{Truthful: 0.5, Strategic: 0.5})
	m2 := MixLabel(map[Behavior]float64{Strategic: 0.5, Truthful: 0.5})
	if m1 != m2 {
		t.Errorf("labels differ: %s vs %s", m1, m2)
	}
}

func TestPopulationFill(t *testing.T) {
	cfg := Config{NumBuyers: 10, Rounds: 1, Mix: map[Behavior]float64{Strategic: 0.33}}
	m := Run(cfg, market.PostedPrice{P: 1})
	// All 10 agents participate (strategic ~3, fill truthful 7).
	if m.Volume == 0 {
		t.Error("population must be filled and trade")
	}
}

func TestThinMarketMashupsRaiseTrade(t *testing.T) {
	cfg := ThinConfig{
		Universe: 30, Sellers: 12, AttrsPerSeller: 6,
		Buyers: 200, AttrsPerBuyer: 8, Seed: 7,
	}
	res := ThinSweep(cfg, []int{1, 2, 3, 4})
	for i := 1; i < len(res); i++ {
		if res[i].Rate() < res[i-1].Rate() {
			t.Errorf("rate must be monotone in MaxCombine: %v", res)
		}
	}
	if res[0].Rate() >= res[len(res)-1].Rate() {
		t.Errorf("mashups must raise trade: no-combine %.2f vs combine-4 %.2f",
			res[0].Rate(), res[len(res)-1].Rate())
	}
}

func TestThinMarketDegenerate(t *testing.T) {
	// A buyer needing nothing trades trivially; no sellers means no trade.
	none := ThinMarket(ThinConfig{Universe: 10, Sellers: 0, Buyers: 5, AttrsPerBuyer: 2, MaxCombine: 2, Seed: 1})
	if none.Satisfied != 0 {
		t.Error("no sellers, no trade")
	}
	if none.Rate() != 0 {
		t.Error("rate of zero satisfied is 0")
	}
	zero := ThinResult{}
	if zero.Rate() != 0 {
		t.Error("empty result rate is 0")
	}
}
