// Package sim is the market simulator of the platform (paper §6.1): "a
// framework to evaluate how resilient a market design is under adversarial,
// evil, and faulty processes". Market designs sound on paper assume rational
// players; the simulator populates the market with truthful, strategic,
// risk-loving, ignorant, faulty and coalition-forming adversarial agents and
// measures revenue, welfare, allocation efficiency and — critically —
// whether truthful participation remains the best strategy (incentive
// compatibility in practice, not just on paper).
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/market"
)

// Behavior is an agent's bidding strategy.
type Behavior string

// Agent behaviours (paper §6.1: "model adversarial, coalition-building, as
// well as risky and ignorant players").
const (
	// Truthful bids the private value.
	Truthful Behavior = "truthful"
	// Strategic shades bids below value to capture surplus.
	Strategic Behavior = "strategic"
	// Adversarial joins a coalition that coordinates on a low common bid to
	// suppress the clearing price.
	Adversarial Behavior = "adversarial"
	// Ignorant bids noise around the value (does not know how to play).
	Ignorant Behavior = "ignorant"
	// RiskLover overbids to win more often.
	RiskLover Behavior = "risklover"
	// Faulty is buggy software: occasionally bids zero or an absurd value.
	Faulty Behavior = "faulty"
)

// AllBehaviors lists every behaviour.
func AllBehaviors() []Behavior {
	return []Behavior{Truthful, Strategic, Adversarial, Ignorant, RiskLover, Faulty}
}

// Config parameterizes a simulation.
type Config struct {
	Rounds    int
	NumBuyers int
	// Mix gives the fraction of buyers per behaviour; normalized internally.
	Mix map[Behavior]float64
	// ValueMean/ValueStd parameterize the lognormal-ish valuation draw.
	ValueMean float64
	ValueStd  float64
	// Supply per round (market.SupplyUnlimited for replicable data).
	Supply int
	// ShadeFactor is the strategic bid fraction (default 0.7).
	ShadeFactor float64
	// CoalitionBid is the adversarial coordinated bid as a fraction of the
	// coalition's mean value (default 0.3).
	CoalitionBid float64
	Seed         int64
}

func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 100
	}
	if c.NumBuyers <= 0 {
		c.NumBuyers = 20
	}
	if c.ValueMean <= 0 {
		c.ValueMean = 100
	}
	if c.ValueStd < 0 {
		c.ValueStd = 30
	}
	if c.ShadeFactor <= 0 {
		c.ShadeFactor = 0.7
	}
	if c.CoalitionBid <= 0 {
		c.CoalitionBid = 0.3
	}
	if len(c.Mix) == 0 {
		c.Mix = map[Behavior]float64{Truthful: 1}
	}
	if c.Supply == 0 {
		c.Supply = market.SupplyUnlimited
	}
	return c
}

// agent is one simulated buyer.
type agent struct {
	name     string
	behavior Behavior
	value    float64 // redrawn per round
}

// Metrics aggregates simulation outcomes.
type Metrics struct {
	Design  string
	Mix     string
	Rounds  int
	Revenue float64 // total across rounds
	Welfare float64 // sum of winners' true values
	Volume  int     // number of sales
	// Efficiency is welfare achieved / maximum achievable welfare.
	Efficiency float64
	// UtilityByBehavior is the mean per-round utility (value - price for
	// wins) per behaviour class.
	UtilityByBehavior map[Behavior]float64
	// TruthfulPremium = mean truthful utility - mean strategic utility.
	// Positive under incentive-compatible designs.
	TruthfulPremium float64
	// OverpayRate is the fraction of sales where price exceeded the
	// winner's true value (buyer regret events).
	OverpayRate float64
}

// String renders a compact report row.
func (m Metrics) String() string {
	return fmt.Sprintf("%-18s %-28s rev=%9.0f welfare=%9.0f vol=%5d eff=%.3f premium=%+7.2f overpay=%.3f",
		m.Design, m.Mix, m.Revenue, m.Welfare, m.Volume, m.Efficiency, m.TruthfulPremium, m.OverpayRate)
}

// MixLabel renders a behaviour mix deterministically.
func MixLabel(mix map[Behavior]float64) string {
	var keys []string
	for b := range mix {
		keys = append(keys, string(b))
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += "+"
		}
		out += fmt.Sprintf("%s:%.0f%%", k, mix[Behavior(k)]*100)
	}
	return out
}

// Run simulates the mechanism under the configured population.
func Run(cfg Config, mech market.Mechanism) Metrics {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	agents := makePopulation(cfg, rng)

	met := Metrics{
		Design:            mech.Name(),
		Mix:               MixLabel(cfg.Mix),
		Rounds:            cfg.Rounds,
		UtilityByBehavior: map[Behavior]float64{},
	}
	utilSum := map[Behavior]float64{}
	utilN := map[Behavior]int{}
	var maxWelfare float64
	overpay, sales := 0, 0

	for round := 0; round < cfg.Rounds; round++ {
		// Redraw valuations.
		for i := range agents {
			v := cfg.ValueMean + cfg.ValueStd*rng.NormFloat64()
			if v < 1 {
				v = 1
			}
			agents[i].value = v
		}
		bids := makeBids(cfg, agents, rng)
		out := mech.Run(bids, cfg.Supply)

		// Max achievable welfare this round: top-supply true values.
		vals := make([]float64, len(agents))
		for i, a := range agents {
			vals[i] = a.value
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		k := cfg.Supply
		if k == market.SupplyUnlimited || k > len(vals) {
			k = len(vals)
		}
		for i := 0; i < k; i++ {
			maxWelfare += vals[i]
		}

		winners := map[string]float64{}
		for _, s := range out.Sales {
			winners[s.Buyer] = s.Price
		}
		met.Revenue += out.Revenue
		met.Volume += len(out.Sales)
		for _, a := range agents {
			price, won := winners[a.name]
			var u float64
			if won {
				u = a.value - price
				met.Welfare += a.value
				sales++
				if price > a.value+1e-9 {
					overpay++
				}
			}
			utilSum[a.behavior] += u
			utilN[a.behavior]++
		}
	}
	for b, s := range utilSum {
		if utilN[b] > 0 {
			met.UtilityByBehavior[b] = s / float64(utilN[b])
		}
	}
	if maxWelfare > 0 {
		met.Efficiency = met.Welfare / maxWelfare
	}
	if sales > 0 {
		met.OverpayRate = float64(overpay) / float64(sales)
	}
	met.TruthfulPremium = met.UtilityByBehavior[Truthful] - met.UtilityByBehavior[Strategic]
	return met
}

func makePopulation(cfg Config, rng *rand.Rand) []agent {
	var total float64
	for _, f := range cfg.Mix {
		total += f
	}
	behaviors := AllBehaviors()
	var agents []agent
	i := 0
	for _, b := range behaviors {
		frac, ok := cfg.Mix[b]
		if !ok {
			continue
		}
		n := int(math.Round(frac / total * float64(cfg.NumBuyers)))
		for j := 0; j < n && len(agents) < cfg.NumBuyers; j++ {
			agents = append(agents, agent{name: fmt.Sprintf("%s-%d", b, i), behavior: b})
			i++
		}
	}
	// Round-off fill with truthful agents.
	for len(agents) < cfg.NumBuyers {
		agents = append(agents, agent{name: fmt.Sprintf("fill-%d", i), behavior: Truthful})
		i++
	}
	_ = rng
	return agents
}

func makeBids(cfg Config, agents []agent, rng *rand.Rand) []market.Bid {
	// Coalition members coordinate on a common low bid.
	var coalitionMean float64
	nCoal := 0
	for _, a := range agents {
		if a.behavior == Adversarial {
			coalitionMean += a.value
			nCoal++
		}
	}
	if nCoal > 0 {
		coalitionMean /= float64(nCoal)
	}
	coalitionBid := coalitionMean * cfg.CoalitionBid

	bids := make([]market.Bid, len(agents))
	for i, a := range agents {
		var offer float64
		switch a.behavior {
		case Truthful:
			offer = a.value
		case Strategic:
			offer = a.value * cfg.ShadeFactor
		case Adversarial:
			offer = coalitionBid
		case Ignorant:
			offer = a.value * (0.2 + 1.6*rng.Float64())
		case RiskLover:
			offer = a.value * 1.3
		case Faulty:
			switch rng.Intn(5) {
			case 0:
				offer = 0
			case 1:
				offer = a.value * 10
			default:
				offer = a.value
			}
		}
		bids[i] = market.Bid{Buyer: a.name, Offer: offer, True: a.value}
	}
	return bids
}

// CompareDesigns runs the same population against several mechanisms —
// experiment E2's core loop.
func CompareDesigns(cfg Config, mechs []market.Mechanism) []Metrics {
	out := make([]Metrics, 0, len(mechs))
	for _, m := range mechs {
		out = append(out, Run(cfg, m))
	}
	return out
}

// CoalitionSweep measures revenue as the adversarial coalition grows —
// experiment E3. fracs are coalition fractions of the buyer population.
func CoalitionSweep(base Config, mech market.Mechanism, fracs []float64) []Metrics {
	out := make([]Metrics, 0, len(fracs))
	for _, f := range fracs {
		cfg := base
		cfg.Mix = map[Behavior]float64{Truthful: 1 - f, Adversarial: f}
		out = append(out, Run(cfg, mech))
	}
	return out
}
