package sim

import (
	"math/rand"
)

// ThinConfig parameterizes the thin-market experiment (E8). The paper argues
// mashups are "a key component to avoid thin markets, where insufficient
// number of participants make trade inefficient" (§8.2): a buyer whose need
// no single dataset covers can still trade when the arbiter may combine
// datasets.
type ThinConfig struct {
	// Universe is the number of distinct attributes in the market.
	Universe int
	// Sellers each own a dataset covering AttrsPerSeller random attributes.
	Sellers        int
	AttrsPerSeller int
	// Buyers each need AttrsPerBuyer random attributes fully covered.
	Buyers        int
	AttrsPerBuyer int
	// MaxCombine caps how many datasets the arbiter may join per mashup
	// (1 = no mashups, the counterfactual).
	MaxCombine int
	Seed       int64
}

// ThinResult reports trade volume for one configuration.
type ThinResult struct {
	MaxCombine int
	Satisfied  int
	Buyers     int
}

// Rate is the fraction of buyers who could trade.
func (r ThinResult) Rate() float64 {
	if r.Buyers == 0 {
		return 0
	}
	return float64(r.Satisfied) / float64(r.Buyers)
}

// ThinMarket simulates attribute coverage: each buyer is satisfied when some
// combination of at most MaxCombine join-compatible datasets covers their
// needed attributes. Datasets are join-compatible here when they share at
// least one attribute (the join key), mirroring the DoD join-graph
// reachability condition.
func ThinMarket(cfg ThinConfig) ThinResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sellers := make([][]int, cfg.Sellers)
	for i := range sellers {
		sellers[i] = sampleAttrs(rng, cfg.Universe, cfg.AttrsPerSeller)
	}
	res := ThinResult{MaxCombine: cfg.MaxCombine, Buyers: cfg.Buyers}
	for b := 0; b < cfg.Buyers; b++ {
		need := sampleAttrs(rng, cfg.Universe, cfg.AttrsPerBuyer)
		if covered(need, sellers, cfg.MaxCombine) {
			res.Satisfied++
		}
	}
	return res
}

func sampleAttrs(rng *rand.Rand, universe, n int) []int {
	if n > universe {
		n = universe
	}
	perm := rng.Perm(universe)
	out := make([]int, n)
	copy(out, perm[:n])
	return out
}

// covered performs a bounded search: starting from each dataset overlapping
// the need, greedily add join-compatible datasets that add coverage.
func covered(need []int, sellers [][]int, maxCombine int) bool {
	needSet := map[int]bool{}
	for _, a := range need {
		needSet[a] = true
	}
	has := func(ds []int, a int) bool {
		for _, x := range ds {
			if x == a {
				return true
			}
		}
		return false
	}
	overlap := func(a, b []int) bool {
		for _, x := range a {
			if has(b, x) {
				return true
			}
		}
		return false
	}
	coverCount := func(chosen []int) int {
		got := map[int]bool{}
		for _, si := range chosen {
			for _, a := range sellers[si] {
				if needSet[a] {
					got[a] = true
				}
			}
		}
		return len(got)
	}
	for start := range sellers {
		chosen := []int{start}
		cur := coverCount(chosen)
		if cur == 0 {
			continue
		}
		for len(chosen) < maxCombine && cur < len(need) {
			bestGain, bestIdx := 0, -1
			for cand := range sellers {
				inChosen := false
				for _, c := range chosen {
					if c == cand {
						inChosen = true
						break
					}
				}
				if inChosen {
					continue
				}
				// Join compatibility: must overlap some chosen dataset.
				joinable := false
				for _, c := range chosen {
					if overlap(sellers[c], sellers[cand]) {
						joinable = true
						break
					}
				}
				if !joinable {
					continue
				}
				gain := coverCount(append(chosen, cand)) - cur
				if gain > bestGain {
					bestGain, bestIdx = gain, cand
				}
			}
			if bestIdx < 0 {
				break
			}
			chosen = append(chosen, bestIdx)
			cur += bestGain
		}
		if cur == len(need) {
			return true
		}
	}
	return false
}

// ThinSweep runs the thin-market model across MaxCombine values.
func ThinSweep(base ThinConfig, combines []int) []ThinResult {
	out := make([]ThinResult, 0, len(combines))
	for _, c := range combines {
		cfg := base
		cfg.MaxCombine = c
		out = append(out, ThinMarket(cfg))
	}
	return out
}
