package sim

import (
	"testing"

	"repro/internal/market"
)

func TestExPostTruthfulPaysTrue(t *testing.T) {
	cfg := baseCfg()
	m := RunExPost(cfg, market.ExPost{AuditProb: 0.3, Penalty: 4})
	// All truthful: revenue equals welfare (everyone pays their value),
	// utility is zero, nobody is caught.
	if diff := m.Revenue - m.Welfare; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("truthful ex-post revenue %v != welfare %v", m.Revenue, m.Welfare)
	}
	if m.CaughtCheats != 0 {
		t.Errorf("no cheats to catch, got %d", m.CaughtCheats)
	}
	if m.UnderReportRate != 0 {
		t.Errorf("under report rate = %v", m.UnderReportRate)
	}
	if m.Audits == 0 {
		t.Error("audits must run at prob 0.3")
	}
}

func TestExPostAuditsDeterCheating(t *testing.T) {
	cfg := baseCfg()
	cfg.Mix = map[Behavior]float64{Truthful: 0.5, Strategic: 0.5}
	// Deterrent regime: AuditProb·Penalty = 1.2 > 1.
	deterred := RunExPost(cfg, market.ExPost{AuditProb: 0.3, Penalty: 4})
	if deterred.CaughtCheats == 0 {
		t.Error("strategic under-reporters must sometimes be caught")
	}
	if deterred.PenaltiesPaid <= 0 {
		t.Error("penalties must accrue")
	}
	// With deterrent audits, truthful reporting must beat shading.
	if deterred.TruthfulPremium <= 0 {
		t.Errorf("audit regime must make honesty optimal: premium=%v", deterred.TruthfulPremium)
	}
	// Without audits, cheats pay less: strategic beats truthful.
	unaudited := RunExPost(cfg, market.ExPost{AuditProb: 0, Penalty: 4})
	if unaudited.TruthfulPremium >= 0 {
		t.Errorf("no audits must reward cheating: premium=%v", unaudited.TruthfulPremium)
	}
	if unaudited.UnderReportRate == 0 {
		t.Error("strategic agents under-report")
	}
}

func TestDynamicArrivalSupplyHelps(t *testing.T) {
	base := DynamicConfig{
		Rounds: 300, BuyerArrivalRate: 2, Patience: 4, MatchProb: 0.02, Seed: 9,
	}
	thin := base
	thin.SellerArrivalRate = 0.05
	thick := base
	thick.SellerArrivalRate = 0.5
	mThin := RunDynamic(thin)
	mThick := RunDynamic(thick)
	if mThin.Arrived == 0 || mThick.Arrived == 0 {
		t.Fatal("buyers must arrive")
	}
	if mThick.ServiceRate() <= mThin.ServiceRate() {
		t.Errorf("more supply must serve more buyers: thin=%.2f thick=%.2f",
			mThin.ServiceRate(), mThick.ServiceRate())
	}
	if mThin.Abandoned == 0 {
		t.Error("a thin market must lose impatient buyers")
	}
	if mThick.MeanWait > float64(base.Patience) {
		t.Errorf("mean wait %v beyond patience", mThick.MeanWait)
	}
}

func TestDynamicConservation(t *testing.T) {
	cfg := DynamicConfig{
		Rounds: 200, BuyerArrivalRate: 1.5, SellerArrivalRate: 0.3,
		Patience: 3, MatchProb: 0.05, Seed: 4,
	}
	m := RunDynamic(cfg)
	// Everyone who arrived was served, abandoned, or still queued at the
	// end; queue is bounded by arrived - served - abandoned >= 0.
	remaining := m.Arrived - m.Served - m.Abandoned
	if remaining < 0 {
		t.Errorf("served+abandoned exceeds arrivals: %+v", m)
	}
	if m.PeakQueue < remaining {
		t.Errorf("peak queue %d below final queue %d", m.PeakQueue, remaining)
	}
}
