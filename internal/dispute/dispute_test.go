package dispute

import (
	"testing"

	"repro/internal/ledger"
)

func mkLedger(t *testing.T) *ledger.Ledger {
	t.Helper()
	l := ledger.New()
	for _, a := range []string{"buyer", "arbiter"} {
		if err := l.Open(a, ledger.FromFloat(500)); err != nil {
			t.Fatal(err)
		}
	}
	// A transaction referenced by memo, as the arbiter would record it.
	if err := l.Transfer("buyer", "arbiter", ledger.FromFloat(100), "purchase tx-0007"); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestFileRequiresAuditReference(t *testing.T) {
	l := mkLedger(t)
	r := NewResolver(l)
	if _, err := r.File(KindQuality, "tx-0007", "buyer", "arbiter", 100); err != nil {
		t.Fatalf("valid reference rejected: %v", err)
	}
	if _, err := r.File(KindQuality, "tx-9999", "buyer", "arbiter", 100); err == nil {
		t.Error("unknown transaction must be rejected")
	}
	// Tamper complaints don't need a reference (the log itself is suspect).
	if _, err := r.File(KindTamper, "", "buyer", "arbiter", 0); err != nil {
		t.Errorf("tamper filing failed: %v", err)
	}
	if _, err := r.File(KindQuality, "tx-0007", "buyer", "arbiter", -5); err == nil {
		t.Error("negative amount must fail")
	}
}

func TestUpholdRefunds(t *testing.T) {
	l := mkLedger(t)
	r := NewResolver(l)
	d, _ := r.File(KindQuality, "tx-0007", "buyer", "arbiter", 100)
	out, err := r.Resolve(d.ID, Verdict{Uphold: true, RefundFrac: 0.5, Reason: "accuracy below promise"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != StatusUpheld || out.Refunded != 50 {
		t.Errorf("resolution = %+v", out)
	}
	if l.Balance("buyer").Float() != 450 {
		t.Errorf("buyer balance = %v", l.Balance("buyer"))
	}
	// Already resolved.
	if _, err := r.Resolve(d.ID, Verdict{}); err == nil {
		t.Error("double resolution must fail")
	}
}

func TestRejectKeepsFunds(t *testing.T) {
	l := mkLedger(t)
	r := NewResolver(l)
	d, _ := r.File(KindNonDelivery, "tx-0007", "buyer", "arbiter", 100)
	out, err := r.Resolve(d.ID, Verdict{Uphold: false, Reason: "delivery receipt in log"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != StatusRejected || out.Refunded != 0 {
		t.Errorf("resolution = %+v", out)
	}
	if l.Balance("buyer").Float() != 400 {
		t.Errorf("buyer balance moved on rejection: %v", l.Balance("buyer"))
	}
}

func TestRefundFracClamped(t *testing.T) {
	l := mkLedger(t)
	r := NewResolver(l)
	d, _ := r.File(KindQuality, "tx-0007", "buyer", "arbiter", 100)
	out, err := r.Resolve(d.ID, Verdict{Uphold: true, RefundFrac: 5})
	if err != nil {
		t.Fatal(err)
	}
	if out.Refunded != 100 {
		t.Errorf("refund must clamp to the disputed amount: %v", out.Refunded)
	}
}

func TestOpenAndGet(t *testing.T) {
	l := mkLedger(t)
	r := NewResolver(l)
	d, _ := r.File(KindLicenseBreach, "tx-0007", "buyer", "arbiter", 10)
	if len(r.Open()) != 1 {
		t.Error("open list")
	}
	got, err := r.Get(d.ID)
	if err != nil || got.Kind != KindLicenseBreach {
		t.Errorf("get = %+v, %v", got, err)
	}
	if _, err := r.Get("nope"); err == nil {
		t.Error("unknown get must fail")
	}
	_, _ = r.Resolve(d.ID, Verdict{Uphold: false})
	if len(r.Open()) != 0 {
		t.Error("resolved disputes leave the open list")
	}
	if _, err := r.Resolve("nope", Verdict{}); err == nil {
		t.Error("unknown resolve must fail")
	}
}
