// Package dispute implements dispute management (paper §4.4: "for
// situations when the chain of trust is broken, dispute management systems
// must be either embedded in or informed by the transactions that take place
// in the DMMS so the appropriate entities can intervene"). A dispute
// references a transaction in the hash-chained audit log; resolution first
// verifies the log's integrity (a corrupted log is itself grounds for
// upholding the complaint), then applies a remedy — refund, partial refund,
// or rejection — settled through the market ledger.
package dispute

import (
	"fmt"
	"sync"

	"repro/internal/ledger"
)

// Kind classifies complaints.
type Kind string

// Dispute kinds.
const (
	// KindQuality: the delivered mashup did not match the promised
	// satisfaction level.
	KindQuality Kind = "quality"
	// KindNonDelivery: paid but never received the data.
	KindNonDelivery Kind = "non-delivery"
	// KindLicenseBreach: a beneficiary resold no-resale data.
	KindLicenseBreach Kind = "license-breach"
	// KindTamper: the complainant believes the audit log was altered.
	KindTamper Kind = "tamper"
)

// Status tracks a dispute's lifecycle.
type Status string

// Dispute statuses.
const (
	StatusOpen     Status = "open"
	StatusUpheld   Status = "upheld"
	StatusRejected Status = "rejected"
)

// Dispute is one filed complaint.
type Dispute struct {
	ID          string
	Kind        Kind
	TxID        string
	Complainant string
	Respondent  string
	Amount      float64 // amount in question
	Status      Status
	Resolution  string
	Refunded    float64
}

// Resolver adjudicates disputes against a ledger's audit log.
type Resolver struct {
	mu       sync.Mutex
	ledger   *ledger.Ledger
	disputes map[string]*Dispute
	nextID   int
}

// NewResolver creates a resolver over the market ledger.
func NewResolver(l *ledger.Ledger) *Resolver {
	return &Resolver{ledger: l, disputes: map[string]*Dispute{}}
}

// File opens a dispute. The transaction must appear in the audit log (by
// memo reference) unless the complaint is about tampering itself.
func (r *Resolver) File(kind Kind, txID, complainant, respondent string, amount float64) (*Dispute, error) {
	if amount < 0 {
		return nil, fmt.Errorf("dispute: negative amount")
	}
	if kind != KindTamper && !r.txReferenced(txID) {
		return nil, fmt.Errorf("dispute: transaction %q not found in audit log", txID)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	d := &Dispute{
		ID:   fmt.Sprintf("disp-%04d", r.nextID),
		Kind: kind, TxID: txID,
		Complainant: complainant, Respondent: respondent,
		Amount: amount, Status: StatusOpen,
	}
	r.disputes[d.ID] = d
	return d, nil
}

func (r *Resolver) txReferenced(txID string) bool {
	for _, e := range r.ledger.Log() {
		if e.From == txID || e.To == txID || containsToken(e.Memo, txID) {
			return true
		}
	}
	return false
}

func containsToken(memo, tok string) bool {
	if tok == "" {
		return false
	}
	for i := 0; i+len(tok) <= len(memo); i++ {
		if memo[i:i+len(tok)] == tok {
			return true
		}
	}
	return false
}

// Verdict is an adjudicator's finding.
type Verdict struct {
	Uphold     bool
	RefundFrac float64 // fraction of the disputed amount refunded when upheld
	Reason     string
}

// Resolve applies a verdict: first the audit log's integrity is checked —
// if the log is corrupted, the dispute is upheld in full regardless of the
// verdict (the arbiter cannot prove its side). Refunds transfer respondent →
// complainant.
func (r *Resolver) Resolve(disputeID string, v Verdict) (*Dispute, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.disputes[disputeID]
	if !ok {
		return nil, fmt.Errorf("dispute: no dispute %q", disputeID)
	}
	if d.Status != StatusOpen {
		return nil, fmt.Errorf("dispute: %q already %s", disputeID, d.Status)
	}
	if corrupt := r.ledger.VerifyChain(); corrupt != -1 {
		v = Verdict{Uphold: true, RefundFrac: 1, Reason: fmt.Sprintf("audit log corrupted at entry %d", corrupt)}
	}
	if !v.Uphold {
		d.Status = StatusRejected
		d.Resolution = v.Reason
		return d, nil
	}
	frac := v.RefundFrac
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	refund := d.Amount * frac
	if refund > 0 {
		if err := r.ledger.Transfer(d.Respondent, d.Complainant, ledger.FromFloat(refund), "dispute refund "+d.ID); err != nil {
			return nil, fmt.Errorf("dispute: refund failed: %w", err)
		}
	}
	d.Status = StatusUpheld
	d.Resolution = v.Reason
	d.Refunded = refund
	return d, nil
}

// Open lists open disputes.
func (r *Resolver) Open() []*Dispute {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Dispute
	for _, d := range r.disputes {
		if d.Status == StatusOpen {
			out = append(out, d)
		}
	}
	return out
}

// Get returns a dispute by ID.
func (r *Resolver) Get(id string) (*Dispute, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.disputes[id]
	if !ok {
		return nil, fmt.Errorf("dispute: no dispute %q", id)
	}
	return d, nil
}
