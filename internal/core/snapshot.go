package core

import (
	"fmt"
	"time"

	"repro/internal/arbiter"
	"repro/internal/catalog"
	"repro/internal/dod"
	"repro/internal/ledger"
	"repro/internal/license"
	"repro/internal/mltask"
	"repro/internal/relation"
	"repro/internal/wtp"
)

// This file implements snapshot/restore for the platform: the checkpoint
// half of the durability story (internal/wal holds the log half). A
// PlatformSnapshot captures everything the engine's replay path would
// otherwise rebuild from the event log — accounts, catalog contents, open
// requests, the ID counter — so a restart can boot from the checkpoint and
// replay only the WAL tail.
//
// Serializable request specs live here too: the event log and snapshots
// both need a wire form for dod.Want + wtp.Function, and only the coverage
// and classifier task kinds can travel (arbitrary code tasks — wtp.FuncTask —
// are in-process only and therefore not durable).

// TaskSpec is the serializable form of a wtp.Task.
type TaskSpec struct {
	Kind string `json:"kind"` // "coverage" | "classifier"
	// Coverage.
	Columns  []string `json:"columns,omitempty"`
	WantRows int      `json:"want_rows,omitempty"`
	// Classifier.
	Features []string `json:"features,omitempty"`
	Label    string   `json:"label,omitempty"`
	Model    string   `json:"model,omitempty"`
	Seed     int64    `json:"seed,omitempty"`
}

// EncodeTask converts a task to its spec. The second return is false for
// task kinds that cannot be serialized (code packages).
func EncodeTask(t wtp.Task) (TaskSpec, bool) {
	switch task := t.(type) {
	case wtp.CoverageTask:
		return TaskSpec{Kind: "coverage", Columns: task.Columns, WantRows: task.WantRows}, true
	case wtp.ClassifierTask:
		return TaskSpec{Kind: "classifier", Features: task.Spec.Features, Label: task.Spec.Label,
			Model: string(task.Spec.Model), Seed: task.Spec.Seed}, true
	default:
		return TaskSpec{}, false
	}
}

// Task rebuilds the wtp.Task the spec encodes.
func (s TaskSpec) Task() (wtp.Task, error) {
	switch s.Kind {
	case "coverage":
		return wtp.CoverageTask{Columns: s.Columns, WantRows: s.WantRows}, nil
	case "classifier":
		return wtp.ClassifierTask{Spec: mltask.ClassifierTask{
			Features: s.Features, Label: s.Label, Model: mltask.ModelKind(s.Model), Seed: s.Seed}}, nil
	default:
		return nil, fmt.Errorf("core: unknown task kind %q", s.Kind)
	}
}

// CurvePointSpec is one WTP price point on the wire.
type CurvePointSpec struct {
	MinSatisfaction float64 `json:"min_satisfaction"`
	Price           float64 `json:"price"`
}

// ConstraintsSpec is the serializable form of wtp.Constraints (the Now
// anchor is deliberately dropped; restored constraints re-anchor on
// time.Now, like freshly submitted ones).
type ConstraintsSpec struct {
	MaxAge            time.Duration `json:"max_age,omitempty"`
	RequireProvenance bool          `json:"require_provenance,omitempty"`
	AllowedAuthors    []string      `json:"allowed_authors,omitempty"`
	MaxMissingRatio   float64       `json:"max_missing_ratio,omitempty"`
	MinRows           int           `json:"min_rows,omitempty"`
}

// RequestSpec is the full serializable form of one buyer request: the
// dod.Want plus the WTP-function. It is what tx logs and snapshots persist
// so an open request survives a restart.
type RequestSpec struct {
	Buyer   string              `json:"buyer"`
	Purpose string              `json:"purpose,omitempty"`
	Columns []string            `json:"columns"`
	Aliases map[string][]string `json:"aliases,omitempty"`
	// Want knobs.
	MaxDatasets   int     `json:"max_datasets,omitempty"`
	MaxCandidates int     `json:"max_candidates,omitempty"`
	MinJoinScore  float64 `json:"min_join_score,omitempty"`
	MinRows       int     `json:"min_rows,omitempty"`
	// WTP-function.
	Task        TaskSpec           `json:"task"`
	Curve       []CurvePointSpec   `json:"curve"`
	TrueValue   []CurvePointSpec   `json:"true_value,omitempty"`
	Constraints ConstraintsSpec    `json:"constraints,omitempty"`
	Owned       *relation.Relation `json:"owned,omitempty"`
}

func encodeCurve(c wtp.PriceCurve) []CurvePointSpec {
	if len(c) == 0 {
		return nil
	}
	out := make([]CurvePointSpec, len(c))
	for i, p := range c {
		out[i] = CurvePointSpec{MinSatisfaction: p.MinSatisfaction, Price: p.Price}
	}
	return out
}

func decodeCurve(specs []CurvePointSpec) wtp.PriceCurve {
	if len(specs) == 0 {
		return nil
	}
	out := make(wtp.PriceCurve, len(specs))
	for i, p := range specs {
		out[i] = wtp.CurvePoint{MinSatisfaction: p.MinSatisfaction, Price: p.Price}
	}
	return out
}

// EncodeRequest converts a want + WTP-function into its durable spec. The
// second return is false when the function's task is not serializable.
func EncodeRequest(want dod.Want, f *wtp.Function) (*RequestSpec, bool) {
	task, ok := EncodeTask(f.Task)
	if !ok {
		return nil, false
	}
	return &RequestSpec{
		Buyer:         f.Buyer,
		Purpose:       f.Purpose,
		Columns:       want.Columns,
		Aliases:       want.Aliases,
		MaxDatasets:   want.MaxDatasets,
		MaxCandidates: want.MaxCandidates,
		MinJoinScore:  want.MinJoinScore,
		MinRows:       want.MinRows,
		Task:          task,
		Curve:         encodeCurve(f.Curve),
		TrueValue:     encodeCurve(f.TrueValue),
		Constraints: ConstraintsSpec{
			MaxAge:            f.Constraints.MaxAge,
			RequireProvenance: f.Constraints.RequireProvenance,
			AllowedAuthors:    f.Constraints.AllowedAuthors,
			MaxMissingRatio:   f.Constraints.MaxMissingRatio,
			MinRows:           f.Constraints.MinRows,
		},
		Owned: f.Owned,
	}, true
}

// Decode rebuilds the dod.Want and wtp.Function the spec encodes.
func (s *RequestSpec) Decode() (dod.Want, *wtp.Function, error) {
	task, err := s.Task.Task()
	if err != nil {
		return dod.Want{}, nil, err
	}
	f := &wtp.Function{
		Buyer:     s.Buyer,
		Purpose:   s.Purpose,
		Task:      task,
		Curve:     decodeCurve(s.Curve),
		TrueValue: decodeCurve(s.TrueValue),
		Constraints: wtp.Constraints{
			MaxAge:            s.Constraints.MaxAge,
			RequireProvenance: s.Constraints.RequireProvenance,
			AllowedAuthors:    s.Constraints.AllowedAuthors,
			MaxMissingRatio:   s.Constraints.MaxMissingRatio,
			MinRows:           s.Constraints.MinRows,
		},
		Owned: s.Owned,
	}
	want := dod.Want{
		Columns:       s.Columns,
		Aliases:       s.Aliases,
		MaxDatasets:   s.MaxDatasets,
		MaxCandidates: s.MaxCandidates,
		MinJoinScore:  s.MinJoinScore,
		MinRows:       s.MinRows,
	}
	return want, f, nil
}

// AccountState is one ledger account in a snapshot. Balance is in
// micro-units (ledger.Currency), exact by construction.
type AccountState struct {
	Name    string          `json:"name"`
	Balance ledger.Currency `json:"balance"`
}

// DatasetState is one shared dataset in a snapshot: the current catalog
// version plus the metadata and license terms matching rounds consult.
type DatasetState struct {
	ID       string             `json:"id"`
	Owner    string             `json:"owner"`
	Relation *relation.Relation `json:"relation"`
	Meta     wtp.DatasetMeta    `json:"meta"`
	License  string             `json:"license"`
	TaxRate  float64            `json:"tax_rate,omitempty"`
}

// RequestState is one open request in a snapshot.
type RequestState struct {
	ID   string       `json:"id"`
	Spec *RequestSpec `json:"spec"`
}

// PlatformSnapshot is a point-in-time checkpoint of the platform state the
// engine's event-log replay rebuilds: participants and balances, shared
// datasets (current version), open requests, and the arbiter's ID counter.
// Derived state — profiles, the discovery index, seller platforms — is
// recomputed on restore by re-ingesting datasets in share order, so a
// restored platform matches a replayed one exactly. Not captured: catalog
// version history, the audit log (restart is an audit-visible event), and
// open requests carrying non-serializable code tasks.
type PlatformSnapshot struct {
	Design   string         `json:"design"`
	Sellers  []string       `json:"sellers,omitempty"` // creation order
	Buyers   []string       `json:"buyers,omitempty"`  // creation order
	Accounts []AccountState `json:"accounts,omitempty"`
	Datasets []DatasetState `json:"datasets,omitempty"` // share order
	Requests []RequestState `json:"requests,omitempty"` // filing order
	// History preserves the completed-transaction record (sans mashups);
	// its ledger effects are already inside Accounts.
	History []arbiter.ReplayedSettlement `json:"history,omitempty"`
	// PendingExPost carries delivered-but-unreported ex-post escrows: the
	// deposits are held outside every account balance, so the checkpoint
	// must name them explicitly or restore would destroy the money. Restore
	// re-seeds the ledger escrow and the arbiter's pending set, and the
	// buyer's later value report settles against them exactly as if the
	// process had never restarted.
	PendingExPost []arbiter.PendingEscrow `json:"pending_ex_post,omitempty"`
	// Rng is the arbiter's audit-RNG state, stepped once per settled report;
	// carrying it keeps post-restore audit decisions identical to the
	// uninterrupted run.
	Rng uint64 `json:"rng,omitempty"`
	// Unmet carries the demand-signal counters (column -> times wanted but
	// unsupplied) so the recommendation/negotiation services keep their
	// signal across a restore.
	Unmet  map[string]int `json:"unmet,omitempty"`
	NextID int            `json:"next_id"`
}

// DatasetStates returns the currently shared datasets in share order, each
// with the relation version, metadata and license terms matching rounds
// consult. Snapshots embed this; the federation router also reads it to
// mirror a shard's catalog into a scratch platform for cross-shard matching.
func (p *Platform) DatasetStates() []DatasetState {
	a := p.Arbiter
	var out []DatasetState
	for _, id := range a.SharedIDs() {
		rel, err := a.Catalog.Get(catalog.DatasetID(id))
		if err != nil {
			continue
		}
		terms := a.Licenses.TermsFor(id)
		out = append(out, DatasetState{
			ID:       id,
			Owner:    a.Catalog.Owner(catalog.DatasetID(id)),
			Relation: rel,
			Meta:     a.MetaFor(id),
			License:  string(terms.Kind),
			TaxRate:  terms.ExclusivityTaxRate,
		})
	}
	return out
}

// Snapshot captures the platform checkpoint. Call it from a quiesced point
// (the engine holds its epoch lock while snapshotting) so the state is a
// consistent cut.
func (p *Platform) Snapshot() *PlatformSnapshot {
	p.mu.RLock()
	snap := &PlatformSnapshot{
		Design:  p.Design.Label,
		Sellers: append([]string(nil), p.sellerOrder...),
		Buyers:  append([]string(nil), p.buyerOrder...),
	}
	p.mu.RUnlock()

	a := p.Arbiter
	for _, name := range a.Ledger.Accounts() {
		snap.Accounts = append(snap.Accounts, AccountState{Name: name, Balance: a.Ledger.Balance(name)})
	}
	snap.Datasets = p.DatasetStates()
	for _, r := range a.OpenRequestStates() {
		spec, ok := EncodeRequest(r.Want, r.WTP)
		if !ok {
			continue // code-task requests are not durable
		}
		snap.Requests = append(snap.Requests, RequestState{ID: r.ID, Spec: spec})
	}
	snap.History = a.HistorySkeletons()
	snap.PendingExPost = a.PendingEscrows()
	snap.Unmet = a.UnmetCounts()
	snap.NextID = a.ReplayNextID()
	snap.Rng = a.RngState()
	return snap
}

// RestorePlatform builds a platform from a checkpoint: participants are
// recreated in their original order (seller-side mechanism seeds depend on
// it), datasets re-ingested in share order (rebuilding profiles and the
// discovery index), balances applied exactly, and open requests re-filed
// under their original IDs. The options' design must match the snapshot's
// unless explicitly overridden.
func RestorePlatform(opts Options, snap *PlatformSnapshot) (*Platform, error) {
	if snap == nil {
		return NewPlatform(opts)
	}
	if opts.Design == "" && opts.CustomDesign == nil {
		opts.Design = snap.Design
	}
	p, err := NewPlatform(opts)
	if err != nil {
		return nil, err
	}
	for _, s := range snap.Sellers {
		p.Seller(s)
	}
	for _, b := range snap.Buyers {
		p.Buyer(b, 0)
	}
	for _, d := range snap.Datasets {
		terms := license.Terms{Kind: license.Kind(d.License), ExclusivityTaxRate: d.TaxRate}
		if err := p.ShareDataset(d.Owner, catalog.DatasetID(d.ID), d.Relation, d.Meta, terms); err != nil {
			return nil, fmt.Errorf("core: restore dataset %s: %w", d.ID, err)
		}
	}
	for _, acct := range snap.Accounts {
		if p.Arbiter.Ledger.Exists(acct.Name) {
			if acct.Balance > 0 {
				if err := p.Arbiter.Ledger.Deposit(acct.Name, acct.Balance); err != nil {
					return nil, fmt.Errorf("core: restore account %s: %w", acct.Name, err)
				}
			}
		} else if err := p.Arbiter.Ledger.Open(acct.Name, acct.Balance); err != nil {
			return nil, fmt.Errorf("core: restore account %s: %w", acct.Name, err)
		}
	}
	for _, r := range snap.Requests {
		want, f, err := r.Spec.Decode()
		if err != nil {
			return nil, fmt.Errorf("core: restore request %s: %w", r.ID, err)
		}
		if err := p.Arbiter.RestoreRequest(r.ID, want, f); err != nil {
			return nil, fmt.Errorf("core: restore request %s: %w", r.ID, err)
		}
	}
	p.Arbiter.RestoreHistory(snap.History)
	if err := p.Arbiter.RestorePendingEscrows(snap.PendingExPost); err != nil {
		return nil, err
	}
	p.Arbiter.AddUnmet(snap.Unmet)
	p.Arbiter.RestoreNextID(snap.NextID)
	p.Arbiter.RestoreRngState(snap.Rng)
	return p, nil
}

// SettleReport settles a pending ex-post transaction with the buyer's
// reported value and returns the realized outcome — the engine's hook for
// logging value-reported events.
func (p *Platform) SettleReport(txID string, reported, trueValue float64) (arbiter.ReportOutcome, error) {
	return p.Arbiter.SettleReport(txID, reported, trueValue)
}

// ReplayReport re-applies one report settlement from a durable event — the
// platform-level hook the engine's replay path calls for value-reported
// records.
func (p *Platform) ReplayReport(rr arbiter.ReplayedReport) error {
	return p.Arbiter.ReplayReport(rr)
}

// ReplaySettlement re-applies one settled sale from a durable event — the
// platform-level hook the engine's replay path calls for tx-settled records.
func (p *Platform) ReplaySettlement(rs arbiter.ReplayedSettlement) error {
	return p.Arbiter.ReplaySettlement(rs)
}
