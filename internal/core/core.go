// Package core is the public façade of the data market platform. It wires
// the full DMMS stack of the paper — catalog + metadata engine + index
// builder + DoD engine (the Mashup Builder, Fig. 3), the arbiter pipeline
// (Fig. 2) and a chosen market design (§3) — behind a single Platform type,
// so examples and services express the paper's scenarios in a few lines:
//
//	p, _ := core.NewPlatform(core.Options{Design: "external-vickrey"})
//	s := p.Seller("seller1")
//	s.Share("s1", rel, license.Terms{Kind: license.Open})
//	b := p.Buyer("b1", 1000)
//	b.Need("a", "b", "d").ForClassifier(...).PayingAt(0.8, 100).Submit()
//	res, _ := p.MatchRound()
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/arbiter"
	"repro/internal/buyer"
	"repro/internal/catalog"
	"repro/internal/dod"
	"repro/internal/license"
	"repro/internal/market"
	"repro/internal/relation"
	"repro/internal/seller"
	"repro/internal/wtp"
)

// Options configures a platform instance.
type Options struct {
	// Design is a label from market.StandardDesigns, or use CustomDesign.
	Design string
	// CustomDesign overrides Design when non-nil.
	CustomDesign *market.Design
	// EpsilonCap bounds per-dataset privacy budget on seller platforms.
	EpsilonCap float64
	// Seed drives seller-side randomized mechanisms.
	Seed int64
	// Allocator, when non-nil, replaces the resolved design's revenue
	// allocator (e.g. market.AdaptiveShapley installed by the gateway's
	// -allocator-exact-max flag). The design itself is copied, never
	// mutated, so shared registries and CustomDesign values stay intact.
	Allocator market.Allocator
}

// Platform is a running DMMS instance. It is safe for concurrent use: the
// arbiter and ledger carry their own locks, and the seller/buyer registries
// here are guarded so concurrent dmms handlers and the engine's epoch runner
// can create participants in parallel.
type Platform struct {
	Arbiter *arbiter.Arbiter
	Design  *market.Design
	opts    Options

	mu      sync.RWMutex
	sellers map[string]*seller.Platform
	buyers  map[string]*buyer.Platform
	// Creation order, kept for snapshot/restore: seller mechanism seeds
	// derive from creation rank, so restores must replay the same order.
	sellerOrder []string
	buyerOrder  []string
}

// NewPlatform builds the platform with the requested market design.
func NewPlatform(opts Options) (*Platform, error) {
	d := opts.CustomDesign
	if d == nil {
		if opts.Design == "" {
			opts.Design = "external-vickrey"
		}
		reg := market.StandardDesigns()
		var err error
		d, err = reg.Get(opts.Design)
		if err != nil {
			return nil, err
		}
	}
	if opts.EpsilonCap <= 0 {
		opts.EpsilonCap = 4
	}
	if opts.Allocator != nil {
		dd := *d
		dd.Allocator = opts.Allocator
		d = &dd
	}
	a, err := arbiter.New(d)
	if err != nil {
		return nil, err
	}
	return &Platform{
		Arbiter: a,
		Design:  d,
		opts:    opts,
		sellers: map[string]*seller.Platform{},
		buyers:  map[string]*buyer.Platform{},
	}, nil
}

// Seller returns (creating on first use) the named seller's platform.
func (p *Platform) Seller(name string) *seller.Platform {
	p.mu.RLock()
	s, ok := p.sellers[name]
	p.mu.RUnlock()
	if ok {
		return s
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.sellers[name]; ok {
		return s
	}
	// Sellers start with zero balance; they earn by selling.
	_ = p.Arbiter.RegisterParticipant(name, 0)
	s = seller.New(name, p.Arbiter, p.opts.EpsilonCap, p.opts.Seed+int64(len(p.sellers)))
	p.sellers[name] = s
	p.sellerOrder = append(p.sellerOrder, name)
	return s
}

// Buyer returns (creating on first use) the named buyer's platform, funding
// the account on creation.
func (p *Platform) Buyer(name string, funds float64) *buyer.Platform {
	p.mu.RLock()
	b, ok := p.buyers[name]
	p.mu.RUnlock()
	if ok {
		return b
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.buyers[name]; ok {
		return b
	}
	_ = p.Arbiter.RegisterParticipant(name, funds)
	b = buyer.New(name, p.Arbiter)
	p.buyers[name] = b
	p.buyerOrder = append(p.buyerOrder, name)
	return b
}

// MatchRound runs one arbiter matching round.
func (p *Platform) MatchRound() (*arbiter.MatchResult, error) {
	return p.Arbiter.MatchRound()
}

// MatchRoundFor runs one matching round over the given open requests in the
// given order — the engine's policy-ordered round. Unmet demand from the
// result is not recorded until the caller commits it via AddUnmet.
func (p *Platform) MatchRoundFor(ids []string) (*arbiter.MatchResult, error) {
	return p.Arbiter.MatchRoundFor(ids)
}

// AddUnmet commits a round's unmet-demand increments to the demand signals.
func (p *Platform) AddUnmet(cols map[string]int) {
	p.Arbiter.AddUnmet(cols)
}

// OpenWantGroups returns the distinct want groups of the given open requests
// (nil = all open), one representative Want per group in pool order — the
// build stage's work list for the engine's DoD worker pool.
func (p *Platform) OpenWantGroups(ids []string) []dod.Want {
	return p.Arbiter.OpenWantGroups(ids)
}

// BuildCandidates builds (through the DoD engine's versioned candidate
// cache) the mashup candidates for one want. Safe to call from worker
// goroutines concurrently with intake; only catalog mutations serialize
// against it. ctx cancels or bounds the build (the configured build
// deadline applies on top); an abandoned build resolves to a failed set.
func (p *Platform) BuildCandidates(ctx context.Context, want dod.Want) *dod.CandidateSet {
	return p.Arbiter.BuildFor(ctx, want)
}

// PriceRoundFor runs the price stage over the given open requests,
// consuming pre-built candidate sets (keyed by Want.Key()) where still
// valid. A nil map prices with inline builds, exactly like MatchRoundFor.
// ctx bounds inline rebuilds forced by stale or missing sets.
func (p *Platform) PriceRoundFor(ctx context.Context, ids []string, prebuilt map[string]*dod.CandidateSet) (*arbiter.MatchResult, error) {
	return p.Arbiter.PriceRound(ctx, ids, prebuilt)
}

// DoDCacheStats snapshots the DoD engine's candidate-cache counters for the
// engine's stats surface.
func (p *Platform) DoDCacheStats() dod.CacheStats {
	return p.Arbiter.DoD().CacheStats()
}

// OpenRequestCount reports how many requests are currently unmatched —
// scrape-friendly (no ID slice allocation).
func (p *Platform) OpenRequestCount() int {
	return p.Arbiter.OpenCount()
}

// UnmetWantCount reports how many distinct wanted columns carry unmet-demand
// signals.
func (p *Platform) UnmetWantCount() int {
	return p.Arbiter.UnmetWantCount()
}

// SetBuildObserver installs fn to observe each DoD build's wall-clock
// seconds (telemetry only; nil removes it).
func (p *Platform) SetBuildObserver(fn func(seconds float64)) {
	p.Arbiter.DoD().SetBuildHook(fn)
}

// SetDoDCacheConfig bounds the DoD candidate cache.
func (p *Platform) SetDoDCacheConfig(cfg dod.CacheConfig) {
	p.Arbiter.DoD().SetCacheConfig(cfg)
}

// SetBuildDeadline bounds every DoD build: a build outrunning d resolves to
// a failed candidate set instead of wedging its caller. Zero disables.
func (p *Platform) SetBuildDeadline(d time.Duration) {
	p.Arbiter.DoD().SetBuildDeadline(d)
}

// --- engine hooks ---------------------------------------------------------
//
// The concurrent market engine (internal/engine) drives the platform through
// these methods rather than reaching into the arbiter, so the platform stays
// the single seam between coordination and clearing.

// RegisterParticipant opens a ledger account with initial funds.
func (p *Platform) RegisterParticipant(name string, funds float64) error {
	return p.Arbiter.RegisterParticipant(name, funds)
}

// HasAccount reports whether a participant's ledger account is open.
func (p *Platform) HasAccount(name string) bool {
	return p.Arbiter.Ledger.Exists(name)
}

// ShareDataset ingests a dataset on a seller's behalf, creating the seller's
// platform (and zero-balance account) on first use.
func (p *Platform) ShareDataset(sellerName string, id catalog.DatasetID, rel *relation.Relation,
	meta wtp.DatasetMeta, terms license.Terms) error {
	p.Seller(sellerName)
	return p.Arbiter.ShareDataset(sellerName, id, rel, meta, terms)
}

// SubmitRequest files a buyer's data need with the arbiter.
func (p *Platform) SubmitRequest(want dod.Want, f *wtp.Function) (string, error) {
	return p.Arbiter.SubmitRequest(want, f)
}

// Participants returns the registered seller and buyer names, sorted.
func (p *Platform) Participants() (sellers, buyers []string) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for n := range p.sellers {
		sellers = append(sellers, n)
	}
	for n := range p.buyers {
		buyers = append(buyers, n)
	}
	sort.Strings(sellers)
	sort.Strings(buyers)
	return sellers, buyers
}

// Summary renders the platform state for CLI display.
func (p *Platform) Summary() string {
	h := p.Arbiter.History()
	return fmt.Sprintf("design=%s datasets=%d transactions=%d arbiter_fees=%.2f",
		p.Design.Label, p.Arbiter.Catalog.Len(), len(h),
		p.Arbiter.Ledger.Balance(arbiter.ArbiterAccount).Float())
}
