// Package core is the public façade of the data market platform. It wires
// the full DMMS stack of the paper — catalog + metadata engine + index
// builder + DoD engine (the Mashup Builder, Fig. 3), the arbiter pipeline
// (Fig. 2) and a chosen market design (§3) — behind a single Platform type,
// so examples and services express the paper's scenarios in a few lines:
//
//	p, _ := core.NewPlatform(core.Options{Design: "external-vickrey"})
//	s := p.Seller("seller1")
//	s.Share("s1", rel, license.Terms{Kind: license.Open})
//	b := p.Buyer("b1", 1000)
//	b.Need("a", "b", "d").ForClassifier(...).PayingAt(0.8, 100).Submit()
//	res, _ := p.MatchRound()
package core

import (
	"fmt"

	"repro/internal/arbiter"
	"repro/internal/buyer"
	"repro/internal/market"
	"repro/internal/seller"
)

// Options configures a platform instance.
type Options struct {
	// Design is a label from market.StandardDesigns, or use CustomDesign.
	Design string
	// CustomDesign overrides Design when non-nil.
	CustomDesign *market.Design
	// EpsilonCap bounds per-dataset privacy budget on seller platforms.
	EpsilonCap float64
	// Seed drives seller-side randomized mechanisms.
	Seed int64
}

// Platform is a running DMMS instance.
type Platform struct {
	Arbiter *arbiter.Arbiter
	Design  *market.Design
	opts    Options
	sellers map[string]*seller.Platform
	buyers  map[string]*buyer.Platform
}

// NewPlatform builds the platform with the requested market design.
func NewPlatform(opts Options) (*Platform, error) {
	d := opts.CustomDesign
	if d == nil {
		if opts.Design == "" {
			opts.Design = "external-vickrey"
		}
		reg := market.StandardDesigns()
		var err error
		d, err = reg.Get(opts.Design)
		if err != nil {
			return nil, err
		}
	}
	if opts.EpsilonCap <= 0 {
		opts.EpsilonCap = 4
	}
	a, err := arbiter.New(d)
	if err != nil {
		return nil, err
	}
	return &Platform{
		Arbiter: a,
		Design:  d,
		opts:    opts,
		sellers: map[string]*seller.Platform{},
		buyers:  map[string]*buyer.Platform{},
	}, nil
}

// Seller returns (creating on first use) the named seller's platform.
func (p *Platform) Seller(name string) *seller.Platform {
	if s, ok := p.sellers[name]; ok {
		return s
	}
	// Sellers start with zero balance; they earn by selling.
	_ = p.Arbiter.RegisterParticipant(name, 0)
	s := seller.New(name, p.Arbiter, p.opts.EpsilonCap, p.opts.Seed+int64(len(p.sellers)))
	p.sellers[name] = s
	return s
}

// Buyer returns (creating on first use) the named buyer's platform, funding
// the account on creation.
func (p *Platform) Buyer(name string, funds float64) *buyer.Platform {
	if b, ok := p.buyers[name]; ok {
		return b
	}
	_ = p.Arbiter.RegisterParticipant(name, funds)
	b := buyer.New(name, p.Arbiter)
	p.buyers[name] = b
	return b
}

// MatchRound runs one arbiter matching round.
func (p *Platform) MatchRound() (*arbiter.MatchResult, error) {
	return p.Arbiter.MatchRound()
}

// Summary renders the platform state for CLI display.
func (p *Platform) Summary() string {
	h := p.Arbiter.History()
	return fmt.Sprintf("design=%s datasets=%d transactions=%d arbiter_fees=%.2f",
		p.Design.Label, p.Arbiter.Catalog.Len(), len(h),
		p.Arbiter.Ledger.Balance(arbiter.ArbiterAccount).Float())
}
