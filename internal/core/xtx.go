package core

import (
	"sort"

	"repro/internal/arbiter"
	"repro/internal/ledger"
)

// This file holds the platform-level legs of a federated (cross-shard)
// settlement. A mashup whose datasets span arbiter shards cannot settle
// inside one ledger; instead the federation coordinator (internal/federation)
// drives an escrow-style two-phase commit and each shard applies its leg
// through these hooks. Every leg is recorded as an ordinary engine event, so
// crash/replay determinism extends across the shard set.
//
// Money conservation across ledgers: the home shard's commit withdraws the
// micro-unit sum of the remote seller cuts from its supply, and each remote
// shard's commit deposits exactly those micro-units to its sellers. Both
// sides convert each cut with ledger.FromFloat individually — never the
// float sum — so the burned and minted amounts agree bit-for-bit and the
// federation-wide TotalSupply is invariant.

// sortedCutKeys returns the map's keys in sorted order, so ledger effects
// (audit-log order included) are deterministic under replay.
func sortedCutKeys(cuts map[string]float64) []string {
	keys := make([]string, 0, len(cuts))
	for k := range cuts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RemoteCutsCurrency converts a remote-cuts map to the exact micro-unit total
// the home shard burns and the remote shards mint, cut by cut.
func RemoteCutsCurrency(cuts map[string]float64) ledger.Currency {
	var total ledger.Currency
	for _, c := range cuts {
		total += ledger.FromFloat(c)
	}
	return total
}

// XTxPrepare is the prepare leg on the buyer's home shard: the full price
// moves from the buyer's balance into a ledger escrow named after the
// transaction. Fails (and the coordinator aborts) when the buyer cannot
// cover the price.
func (p *Platform) XTxPrepare(xid, buyerName string, price float64) error {
	return p.Arbiter.Ledger.Hold(xid, buyerName, ledger.FromFloat(price), "xtx prepare "+xid)
}

// XTxCommitHome is the commit leg on the buyer's home shard: the escrow pays
// the arbiter in full, home-shard sellers receive their cuts by transfer,
// and the remote cuts' micro-unit sum is withdrawn from this ledger — it
// reappears on the sellers' shards via XTxCommitRemote. The arbiter keeps
// price minus all cuts as its fee.
func (p *Platform) XTxCommitHome(xid string, price float64, localCuts, remoteCuts map[string]float64) error {
	l := p.Arbiter.Ledger
	if err := l.Release(xid, arbiter.ArbiterAccount, ledger.FromFloat(price), "xtx commit "+xid); err != nil {
		return err
	}
	for _, s := range sortedCutKeys(localCuts) {
		if err := l.Transfer(arbiter.ArbiterAccount, s, ledger.FromFloat(localCuts[s]), "xtx cut "+xid); err != nil {
			return err
		}
	}
	if burn := RemoteCutsCurrency(remoteCuts); burn > 0 {
		if err := l.Withdraw(arbiter.ArbiterAccount, burn, "xtx remote cuts "+xid); err != nil {
			return err
		}
	}
	return nil
}

// XTxCommitRemote is the commit leg on a seller shard: each local seller is
// deposited their cut — the micro-units the home shard withdrew.
func (p *Platform) XTxCommitRemote(xid string, cuts map[string]float64) error {
	l := p.Arbiter.Ledger
	for _, s := range sortedCutKeys(cuts) {
		if !l.Exists(s) {
			if err := l.Open(s, 0); err != nil {
				return err
			}
		}
		if err := l.Deposit(s, ledger.FromFloat(cuts[s])); err != nil {
			return err
		}
	}
	l.Note("xtx remote commit " + xid)
	return nil
}

// XTxAbort is the abort leg on the buyer's home shard: the escrow refunds
// the buyer in full. A no-op abort (escrow never held) is the coordinator's
// problem; here an unknown escrow is an error so replay catches divergence.
func (p *Platform) XTxAbort(xid string) error {
	return p.Arbiter.Ledger.Release(xid, arbiter.ArbiterAccount, 0, "xtx abort "+xid)
}
