package core

import (
	"testing"

	"repro/internal/license"
	"repro/internal/market"
	"repro/internal/mltask"
	"repro/internal/workload"
)

func TestNewPlatformDesignSelection(t *testing.T) {
	p, err := NewPlatform(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Design.Label != "external-vickrey" {
		t.Errorf("default design = %s", p.Design.Label)
	}
	if _, err := NewPlatform(Options{Design: "nope"}); err == nil {
		t.Error("unknown design must fail")
	}
	custom := &market.Design{Label: "c", Mechanism: market.PostedPrice{P: 1}, Allocator: market.Uniform{}}
	p2, err := NewPlatform(Options{CustomDesign: custom})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Design != custom {
		t.Error("custom design must win")
	}
}

func TestPlatformPaperScenario(t *testing.T) {
	p, err := NewPlatform(Options{Design: "posted-baseline", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ex := workload.NewPaperExample(400, 2)

	s1 := p.Seller("seller1")
	if err := s1.Share("s1", ex.S1, license.Terms{Kind: license.Open}); err != nil {
		t.Fatal(err)
	}
	s3 := p.Seller("seller3")
	if err := s3.Share("s3", ex.S3, license.Terms{Kind: license.Open}); err != nil {
		t.Fatal(err)
	}
	// The buyer owns labels and wants features a,b,e to train a classifier.
	labels := ex.Truth
	b := p.Buyer("b1", 1000)
	_, err = b.Need("a", "b", "e").
		ForClassifier(mltask.ModelLogistic, []string{"b", "d", "e"}, "label", 3).
		Owning(labels).
		PayingAt(0.8, 100).
		PayingAt(0.9, 150).
		Submit()
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 1 {
		t.Fatalf("transactions = %d unsat %v", len(res.Transactions), res.Unsatisfied)
	}
	tx := res.Transactions[0]
	if tx.Satisfaction < 0.8 {
		t.Errorf("satisfaction = %v; features + owned labels should train well", tx.Satisfaction)
	}
	if b.Balance() >= 1000 {
		t.Error("buyer must have paid")
	}
	if s1.Earnings() <= 0 || s3.Earnings() <= 0 {
		t.Errorf("sellers must earn: %v / %v", s1.Earnings(), s3.Earnings())
	}
	if p.Summary() == "" {
		t.Error("summary must render")
	}
	// Idempotent accessors.
	if p.Seller("seller1") != s1 || p.Buyer("b1", 0) != b {
		t.Error("platform must cache participant handles")
	}
}
