package mltask

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// mkSeparable builds a linearly separable binary dataset in relation form:
// label = (x1 + x2 > 0).
func mkSeparable(n int, seed int64, noise float64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New("train", relation.NewSchema(
		relation.Col("x1", relation.KindFloat),
		relation.Col("x2", relation.KindFloat),
		relation.Col("y", relation.KindBool),
	))
	for i := 0; i < n; i++ {
		x1, x2 := rng.NormFloat64(), rng.NormFloat64()
		y := x1+x2 > 0
		if rng.Float64() < noise {
			y = !y
		}
		r.MustAppend(relation.Float(x1), relation.Float(x2), relation.Bool(y))
	}
	return r
}

func TestFromRelation(t *testing.T) {
	r := mkSeparable(50, 1, 0)
	ds, err := FromRelation(r, []string{"x1", "x2"}, "y")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.X) != 50 || len(ds.Y) != 50 {
		t.Errorf("rows = %d/%d", len(ds.X), len(ds.Y))
	}
	if _, err := FromRelation(r, []string{"ghost"}, "y"); err == nil {
		t.Error("missing feature must fail")
	}
	if _, err := FromRelation(r, []string{"x1"}, "ghost"); err == nil {
		t.Error("missing label must fail")
	}
}

func TestFromRelationSkipsNulls(t *testing.T) {
	r := relation.New("t", relation.NewSchema(
		relation.Col("x", relation.KindFloat), relation.Col("y", relation.KindInt)))
	r.MustAppend(relation.Float(1), relation.Int(1))
	r.MustAppend(relation.Null(), relation.Int(0))
	r.MustAppend(relation.Float(2), relation.Null())
	ds, err := FromRelation(r, []string{"x"}, "y")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.X) != 1 {
		t.Errorf("usable rows = %d, want 1", len(ds.X))
	}
}

func TestFromRelationStringLabels(t *testing.T) {
	r := relation.New("t", relation.NewSchema(
		relation.Col("x", relation.KindFloat), relation.Col("cls", relation.KindString)))
	r.MustAppend(relation.Float(1), relation.String_("spam"))
	r.MustAppend(relation.Float(2), relation.String_("ham"))
	ds, err := FromRelation(r, []string{"x"}, "cls")
	if err != nil {
		t.Fatal(err)
	}
	// sorted: ham=0, spam=1
	if ds.Y[0] != 1 || ds.Y[1] != 0 {
		t.Errorf("labels = %v", ds.Y)
	}
	r.MustAppend(relation.Float(3), relation.String_("third"))
	if _, err := FromRelation(r, []string{"x"}, "cls"); err == nil {
		t.Error(">2 classes must fail")
	}
}

func TestLogisticLearnsSeparable(t *testing.T) {
	r := mkSeparable(400, 2, 0)
	task := ClassifierTask{Features: []string{"x1", "x2"}, Label: "y", Model: ModelLogistic, Seed: 3}
	acc, err := task.Evaluate(r)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("logistic accuracy on separable data = %v, want >= 0.9", acc)
	}
}

func TestKNNAndStump(t *testing.T) {
	r := mkSeparable(300, 4, 0.05)
	for _, mk := range []ModelKind{ModelKNN, ModelStump, ModelMajority} {
		task := ClassifierTask{Features: []string{"x1", "x2"}, Label: "y", Model: mk, Seed: 5}
		acc, err := task.Evaluate(r)
		if err != nil {
			t.Fatalf("%s: %v", mk, err)
		}
		if acc < 0.3 || acc > 1 {
			t.Errorf("%s accuracy = %v out of range", mk, acc)
		}
		if mk == ModelKNN && acc < 0.85 {
			t.Errorf("knn accuracy = %v, want >= 0.85", acc)
		}
	}
}

func TestModelsBeatsMajorityOnSignal(t *testing.T) {
	r := mkSeparable(400, 6, 0.05)
	base := ClassifierTask{Features: []string{"x1", "x2"}, Label: "y", Model: ModelMajority, Seed: 7}
	lr := ClassifierTask{Features: []string{"x1", "x2"}, Label: "y", Model: ModelLogistic, Seed: 7}
	accBase, _ := base.Evaluate(r)
	accLR, _ := lr.Evaluate(r)
	if accLR <= accBase {
		t.Errorf("logistic (%v) must beat majority (%v) when features carry signal", accLR, accBase)
	}
}

func TestSplitDeterministic(t *testing.T) {
	r := mkSeparable(100, 8, 0)
	ds, _ := FromRelation(r, []string{"x1", "x2"}, "y")
	tr1, te1 := ds.Split(0.3, 42)
	tr2, te2 := ds.Split(0.3, 42)
	if len(tr1.X) != len(tr2.X) || len(te1.X) != len(te2.X) {
		t.Fatal("same seed must give same split sizes")
	}
	for i := range te1.X {
		if te1.X[i][0] != te2.X[i][0] {
			t.Fatal("same seed must give identical splits")
		}
	}
	if len(te1.X) != 30 {
		t.Errorf("test size = %d, want 30", len(te1.X))
	}
}

func TestStumpFindsThreshold(t *testing.T) {
	// 1-D data split exactly at 5.
	ds := &Dataset{}
	for i := 0; i < 20; i++ {
		ds.X = append(ds.X, []float64{float64(i)})
		y := 0
		if i > 5 {
			y = 1
		}
		ds.Y = append(ds.Y, y)
	}
	s, err := TrainStump(ds)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(s, ds); acc != 1 {
		t.Errorf("stump training accuracy = %v, want 1 (threshold %v)", acc, s.Threshold)
	}
}

func TestTrainErrorsOnEmpty(t *testing.T) {
	empty := &Dataset{}
	if _, err := TrainLogistic(empty, DefaultLogistic()); err == nil {
		t.Error("logistic on empty must fail")
	}
	if _, err := TrainKNN(empty, 3); err == nil {
		t.Error("knn on empty must fail")
	}
	if _, err := TrainStump(empty); err == nil {
		t.Error("stump on empty must fail")
	}
	if _, err := TrainMajority(empty); err == nil {
		t.Error("majority on empty must fail")
	}
	one := &Dataset{X: [][]float64{{1}}, Y: []int{1}}
	if _, err := TrainKNN(one, 0); err == nil {
		t.Error("k=0 must fail")
	}
}

func TestEvaluateErrorsPropagate(t *testing.T) {
	r := relation.New("empty", relation.NewSchema(
		relation.Col("x", relation.KindFloat), relation.Col("y", relation.KindBool)))
	task := ClassifierTask{Features: []string{"x"}, Label: "y"}
	if _, err := task.Evaluate(r); err == nil {
		t.Error("empty relation must fail evaluation")
	}
}
