// Package mltask is the machine-learning substrate buyers' WTP packages run
// on. A buyer who "wants to build a machine learning classifier and needs
// features ⟨a,b,d,e⟩, and at least an accuracy of 80%" (paper §1) ships a
// Task; the WTP-Evaluator trains it on each candidate mashup and measures
// the degree of satisfaction. Implemented from scratch on the stdlib:
// logistic regression (SGD), k-nearest neighbours, a decision stump, and a
// majority-class baseline, plus deterministic train/test evaluation.
package mltask

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/relation"
)

// Dataset is a design matrix with binary labels.
type Dataset struct {
	X      [][]float64
	Y      []int // 0/1
	Labels []string
}

// FromRelation extracts numeric feature columns and a binary label column
// from a relation. Rows with NULL features or labels are skipped. The label
// column may be bool, int (0/1) or string (two distinct values, sorted; the
// larger maps to 1).
func FromRelation(r *relation.Relation, features []string, label string) (*Dataset, error) {
	fi := make([]int, len(features))
	for i, f := range features {
		fi[i] = r.Schema.IndexOf(f)
		if fi[i] < 0 {
			return nil, fmt.Errorf("mltask: relation %q has no feature column %q", r.Name, f)
		}
	}
	li := r.Schema.IndexOf(label)
	if li < 0 {
		return nil, fmt.Errorf("mltask: relation %q has no label column %q", r.Name, label)
	}
	// Map string labels to {0,1}.
	var classes []string
	if r.Schema[li].Kind == relation.KindString {
		set := map[string]bool{}
		for _, row := range r.Rows {
			if !row[li].IsNull() {
				set[row[li].AsString()] = true
			}
		}
		for s := range set {
			classes = append(classes, s)
		}
		sort.Strings(classes)
		if len(classes) > 2 {
			return nil, fmt.Errorf("mltask: label %q has %d classes, want 2", label, len(classes))
		}
	}
	ds := &Dataset{Labels: features}
	for _, row := range r.Rows {
		x := make([]float64, len(fi))
		ok := true
		for j, i := range fi {
			v := row[i]
			if v.IsNull() || !v.IsNumeric() {
				ok = false
				break
			}
			x[j] = v.AsFloat()
		}
		lv := row[li]
		if !ok || lv.IsNull() {
			continue
		}
		var y int
		switch lv.Kind() {
		case relation.KindBool:
			if lv.AsBool() {
				y = 1
			}
		case relation.KindInt, relation.KindFloat:
			if lv.AsFloat() != 0 {
				y = 1
			}
		case relation.KindString:
			if len(classes) == 2 && lv.AsString() == classes[1] {
				y = 1
			}
		default:
			continue
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, y)
	}
	if len(ds.X) == 0 {
		return nil, fmt.Errorf("mltask: no usable rows (features %v, label %q)", features, label)
	}
	return ds, nil
}

// Split partitions the dataset deterministically into train/test using the
// given test fraction and seed.
func (d *Dataset) Split(testFrac float64, seed int64) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(d.X))
	nTest := int(float64(len(d.X)) * testFrac)
	if nTest < 1 && len(d.X) > 1 {
		nTest = 1
	}
	train = &Dataset{Labels: d.Labels}
	test = &Dataset{Labels: d.Labels}
	for i, p := range perm {
		if i < nTest {
			test.X = append(test.X, d.X[p])
			test.Y = append(test.Y, d.Y[p])
		} else {
			train.X = append(train.X, d.X[p])
			train.Y = append(train.Y, d.Y[p])
		}
	}
	return train, test
}

// Model is a trained binary classifier.
type Model interface {
	Predict(x []float64) int
	Name() string
}

// Accuracy computes the fraction of correct predictions on test data.
func Accuracy(m Model, test *Dataset) float64 {
	if len(test.X) == 0 {
		return 0
	}
	ok := 0
	for i, x := range test.X {
		if m.Predict(x) == test.Y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(test.X))
}

// --- logistic regression -----------------------------------------------

// Logistic is an L2-regularized logistic-regression classifier trained by
// SGD with feature standardization.
type Logistic struct {
	W     []float64
	B     float64
	mean  []float64
	scale []float64
}

// LogisticConfig controls training.
type LogisticConfig struct {
	Epochs int
	LR     float64
	L2     float64
	Seed   int64
}

// DefaultLogistic returns sane training defaults.
func DefaultLogistic() LogisticConfig {
	return LogisticConfig{Epochs: 60, LR: 0.1, L2: 1e-4, Seed: 1}
}

// TrainLogistic fits the model on the training set.
func TrainLogistic(train *Dataset, cfg LogisticConfig) (*Logistic, error) {
	if len(train.X) == 0 {
		return nil, fmt.Errorf("mltask: empty training set")
	}
	d := len(train.X[0])
	m := &Logistic{W: make([]float64, d), mean: make([]float64, d), scale: make([]float64, d)}
	// Standardize.
	n := float64(len(train.X))
	for j := 0; j < d; j++ {
		var sum float64
		for _, x := range train.X {
			sum += x[j]
		}
		m.mean[j] = sum / n
		var sq float64
		for _, x := range train.X {
			dlt := x[j] - m.mean[j]
			sq += dlt * dlt
		}
		m.scale[j] = math.Sqrt(sq / n)
		if m.scale[j] == 0 {
			m.scale[j] = 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(train.X))
	for i := range idx {
		idx[i] = i
	}
	z := make([]float64, d)
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			for j := 0; j < d; j++ {
				z[j] = (train.X[i][j] - m.mean[j]) / m.scale[j]
			}
			p := sigmoid(dot(m.W, z) + m.B)
			g := p - float64(train.Y[i])
			for j := 0; j < d; j++ {
				m.W[j] -= cfg.LR * (g*z[j] + cfg.L2*m.W[j])
			}
			m.B -= cfg.LR * g
		}
	}
	return m, nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Predict returns the class for x.
func (m *Logistic) Predict(x []float64) int {
	var s float64
	for j := range m.W {
		s += m.W[j] * (x[j] - m.mean[j]) / m.scale[j]
	}
	if sigmoid(s+m.B) >= 0.5 {
		return 1
	}
	return 0
}

// Name identifies the model.
func (m *Logistic) Name() string { return "logistic" }

// --- k-nearest neighbours ------------------------------------------------

// KNN is a k-nearest-neighbours classifier with Euclidean distance over
// standardized features.
type KNN struct {
	K     int
	X     [][]float64
	Y     []int
	mean  []float64
	scale []float64
}

// TrainKNN memorizes the training set with standardization statistics.
func TrainKNN(train *Dataset, k int) (*KNN, error) {
	if len(train.X) == 0 {
		return nil, fmt.Errorf("mltask: empty training set")
	}
	if k < 1 {
		return nil, fmt.Errorf("mltask: k must be >= 1, got %d", k)
	}
	d := len(train.X[0])
	m := &KNN{K: k, X: train.X, Y: train.Y, mean: make([]float64, d), scale: make([]float64, d)}
	n := float64(len(train.X))
	for j := 0; j < d; j++ {
		var sum float64
		for _, x := range train.X {
			sum += x[j]
		}
		m.mean[j] = sum / n
		var sq float64
		for _, x := range train.X {
			dl := x[j] - m.mean[j]
			sq += dl * dl
		}
		m.scale[j] = math.Sqrt(sq / n)
		if m.scale[j] == 0 {
			m.scale[j] = 1
		}
	}
	return m, nil
}

// Predict votes among the k nearest training points.
func (m *KNN) Predict(x []float64) int {
	type nd struct {
		d float64
		y int
	}
	best := make([]nd, 0, m.K+1)
	for i, t := range m.X {
		var d2 float64
		for j := range t {
			dl := (t[j] - x[j]) / m.scale[j]
			d2 += dl * dl
		}
		best = append(best, nd{d2, m.Y[i]})
		sort.Slice(best, func(a, b int) bool { return best[a].d < best[b].d })
		if len(best) > m.K {
			best = best[:m.K]
		}
	}
	ones := 0
	for _, b := range best {
		ones += b.y
	}
	if 2*ones >= len(best) {
		return 1
	}
	return 0
}

// Name identifies the model.
func (m *KNN) Name() string { return fmt.Sprintf("knn%d", m.K) }

// --- decision stump -------------------------------------------------------

// Stump is a one-level decision tree: the single (feature, threshold) split
// minimizing training error.
type Stump struct {
	Feature   int
	Threshold float64
	LeftClass int // class when x[Feature] <= Threshold
}

// TrainStump exhaustively searches thresholds at observed values.
func TrainStump(train *Dataset) (*Stump, error) {
	if len(train.X) == 0 {
		return nil, fmt.Errorf("mltask: empty training set")
	}
	d := len(train.X[0])
	best := &Stump{Feature: 0, Threshold: 0, LeftClass: 0}
	bestErr := len(train.X) + 1
	for j := 0; j < d; j++ {
		vals := make([]float64, len(train.X))
		for i, x := range train.X {
			vals[i] = x[j]
		}
		sort.Float64s(vals)
		for t := 0; t < len(vals); t++ {
			if t > 0 && vals[t] == vals[t-1] {
				continue
			}
			th := vals[t]
			for _, lc := range []int{0, 1} {
				errs := 0
				for i, x := range train.X {
					pred := 1 - lc
					if x[j] <= th {
						pred = lc
					}
					if pred != train.Y[i] {
						errs++
					}
				}
				if errs < bestErr {
					bestErr = errs
					best = &Stump{Feature: j, Threshold: th, LeftClass: lc}
				}
			}
		}
	}
	return best, nil
}

// Predict applies the split.
func (s *Stump) Predict(x []float64) int {
	if x[s.Feature] <= s.Threshold {
		return s.LeftClass
	}
	return 1 - s.LeftClass
}

// Name identifies the model.
func (s *Stump) Name() string { return "stump" }

// --- majority baseline -----------------------------------------------------

// Majority always predicts the most frequent training class — the floor any
// data-driven model must beat for a mashup to have value.
type Majority struct{ Class int }

// TrainMajority counts classes.
func TrainMajority(train *Dataset) (*Majority, error) {
	if len(train.X) == 0 {
		return nil, fmt.Errorf("mltask: empty training set")
	}
	ones := 0
	for _, y := range train.Y {
		ones += y
	}
	m := &Majority{}
	if 2*ones >= len(train.Y) {
		m.Class = 1
	}
	return m, nil
}

// Predict ignores x.
func (m *Majority) Predict([]float64) int { return m.Class }

// Name identifies the model.
func (m *Majority) Name() string { return "majority" }

// --- task: what a WTP package ships ----------------------------------------

// ModelKind selects the classifier a task trains.
type ModelKind string

// Supported model kinds.
const (
	ModelLogistic ModelKind = "logistic"
	ModelKNN      ModelKind = "knn"
	ModelStump    ModelKind = "stump"
	ModelMajority ModelKind = "majority"
)

// ClassifierTask is the "package that includes the data task" of a
// WTP-function (paper §3.2.2.1): feature columns, label column, model, and
// the deterministic evaluation protocol. Satisfaction = held-out accuracy.
type ClassifierTask struct {
	Features []string
	Label    string
	Model    ModelKind
	TestFrac float64
	Seed     int64
}

// Evaluate trains the task's model on the relation and returns held-out
// accuracy in [0,1]. Missing feature columns or unusable data yield an error
// (degree of satisfaction 0).
func (t ClassifierTask) Evaluate(r *relation.Relation) (float64, error) {
	ds, err := FromRelation(r, t.Features, t.Label)
	if err != nil {
		return 0, err
	}
	frac := t.TestFrac
	if frac <= 0 || frac >= 1 {
		frac = 0.3
	}
	train, test := ds.Split(frac, t.Seed)
	if len(train.X) == 0 || len(test.X) == 0 {
		return 0, fmt.Errorf("mltask: not enough rows to split (%d)", len(ds.X))
	}
	var m Model
	switch t.Model {
	case ModelKNN:
		m, err = TrainKNN(train, 5)
	case ModelStump:
		m, err = TrainStump(train)
	case ModelMajority:
		m, err = TrainMajority(train)
	default:
		m, err = TrainLogistic(train, DefaultLogistic())
	}
	if err != nil {
		return 0, err
	}
	return Accuracy(m, test), nil
}
