package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestE1ProducesTransaction(t *testing.T) {
	tbl, err := E1EndToEnd(300, 42)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(tbl.Rows, "\n")
	if !strings.Contains(joined, "round 2: mashup=") {
		t.Errorf("E1 output missing transaction: %s", joined)
	}
	if !strings.Contains(joined, "audit chain intact=true") {
		t.Errorf("E1 audit failed: %s", joined)
	}
}

func TestE2CoversAllDesignsAndMixes(t *testing.T) {
	tbl := E2SimDesigns(10, 42)
	joined := strings.Join(tbl.Rows, "\n")
	for _, mech := range []string{"posted", "vickrey", "gsp", "rsop", "expost"} {
		if !strings.Contains(joined, mech) {
			t.Errorf("E2 missing mechanism %s", mech)
		}
	}
	for _, mix := range []string{"truthful:100%", "strategic:50%", "adversarial:50%", "faulty:30%"} {
		if !strings.Contains(joined, mix) {
			t.Errorf("E2 missing mix %s", mix)
		}
	}
}

func TestE3CoalitionHurtsVickrey(t *testing.T) {
	tbl := E3Coalitions(60, 42)
	// Extract vickrey revenues at 0% and 50%.
	var rev0, rev50 float64
	for _, row := range tbl.Rows {
		if !strings.HasPrefix(row, "vickrey") {
			continue
		}
		f := fields(row)
		if f["coalition"] == "0%" {
			rev0 = atof(t, f["revenue"])
		}
		if f["coalition"] == "50%" {
			rev50 = atof(t, f["revenue"])
		}
	}
	if rev0 == 0 || rev50 == 0 {
		t.Fatalf("missing vickrey rows: %v", tbl.Rows)
	}
	if rev50 >= rev0 {
		t.Errorf("coalition must suppress vickrey revenue: %v -> %v", rev0, rev50)
	}
}

func fields(row string) map[string]string {
	out := map[string]string{}
	for _, tok := range strings.Fields(row) {
		if i := strings.IndexByte(tok, '='); i > 0 {
			out[tok[:i]] = tok[i+1:]
		}
	}
	return out
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return f
}

func TestE5MonteCarloErrorsSmall(t *testing.T) {
	tbl := E5Shapley(42)
	for _, row := range tbl.Rows {
		f := fields(row)
		if e, ok := f["l1err"]; ok && strings.Contains(row, "mc(") {
			if atof(t, e) > 0.1 {
				t.Errorf("mc error too large: %s", row)
			}
		}
	}
}

func TestE7AccuracyDecreasesWithPrivacy(t *testing.T) {
	tbl := E7PrivacyValue(42)
	var accs []float64
	for _, row := range tbl.Rows {
		f := fields(row)
		if a, ok := f["accuracy"]; ok {
			accs = append(accs, atof(t, a))
		}
	}
	if len(accs) < 5 {
		t.Fatalf("rows: %v", tbl.Rows)
	}
	first, last := accs[0], accs[len(accs)-1]
	if last >= first-0.1 {
		t.Errorf("strong privacy must cost accuracy: clean=%v strongest=%v", first, last)
	}
}

func TestE8TradeRateMonotone(t *testing.T) {
	tbl := E8ThinMarket(42)
	var rates []float64
	for _, row := range tbl.Rows {
		f := fields(row)
		rates = append(rates, atof(t, f["trade_rate"]))
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] < rates[i-1] {
			t.Errorf("trade rate must be monotone in combine limit: %v", rates)
		}
	}
	if rates[len(rates)-1] <= rates[0] {
		t.Errorf("mashups must raise trade: %v", rates)
	}
}

func TestE9TransformBeatsCopy(t *testing.T) {
	tbl, err := E9Arbitrage(42)
	if err != nil {
		t.Fatal(err)
	}
	var copyMargin, derivMargin float64
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row, "margin on identical copy:") {
			copyMargin = atof(t, strings.Fields(row)[4])
		}
		if strings.HasPrefix(row, "margin on derivative:") {
			derivMargin = atof(t, strings.Fields(row)[3])
		}
	}
	if derivMargin <= copyMargin {
		t.Errorf("transformation must out-earn copying: %v vs %v", derivMargin, copyMargin)
	}
	if derivMargin <= 0 {
		t.Errorf("derivative margin must be positive: %v", derivMargin)
	}
}

func TestE10CooperationHelps(t *testing.T) {
	tbl, err := E10Negotiation(42)
	if err != nil {
		t.Fatal(err)
	}
	parse := func(row string) (float64, int) {
		f := fields(row)
		frac := strings.SplitN(f["completed"], "/", 2)
		n, _ := strconv.Atoi(frac[0])
		return atof(t, f["cooperation"]), n
	}
	_, atZero := parse(tbl.Rows[0])
	_, atFull := parse(tbl.Rows[len(tbl.Rows)-1])
	if atZero != 0 {
		t.Errorf("no cooperation must complete nothing, got %d", atZero)
	}
	if atFull <= atZero {
		t.Errorf("full cooperation must complete requests: %d vs %d", atFull, atZero)
	}
}

func TestE4AndE6Render(t *testing.T) {
	if rows := E4MechanismScaling(42).Rows; len(rows) < 12 {
		t.Errorf("E4 rows = %d", len(rows))
	}
	if rows := E6MashupBuilder(42).Rows; len(rows) != 4 {
		t.Errorf("E6 rows = %d", len(rows))
	}
}

func TestE11AuditThreshold(t *testing.T) {
	tbl := E11ExPostAudits(60, 42)
	var premiums []float64
	for _, row := range tbl.Rows {
		f := fields(row)
		premiums = append(premiums, atof(t, f["premium"]))
	}
	if len(premiums) != 5 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	if premiums[0] >= 0 {
		t.Errorf("no audits must reward cheating: premium=%v", premiums[0])
	}
	if premiums[len(premiums)-1] <= 0 {
		t.Errorf("full audits must reward honesty: premium=%v", premiums[len(premiums)-1])
	}
	// Premium should increase with audit probability.
	for i := 1; i < len(premiums); i++ {
		if premiums[i] < premiums[i-1] {
			t.Errorf("premium must rise with audits: %v", premiums)
		}
	}
}

func TestE12ServiceRateMonotone(t *testing.T) {
	tbl := E12DynamicArrival(42)
	var rates []float64
	for _, row := range tbl.Rows {
		f := fields(row)
		rates = append(rates, atof(t, f["service_rate"]))
	}
	if rates[len(rates)-1] <= rates[0] {
		t.Errorf("supply must raise service rate: %v", rates)
	}
}
