package experiments

import (
	"fmt"

	"repro/internal/market"
	"repro/internal/sim"
)

// E11ExPostAudits sweeps the audit probability of the ex-post protocol
// (§3.2.2.2) against cheating and the truthful premium: the mechanism's
// design claim is that "reporting the real value [is] the buyer's preferred
// strategy" — which holds exactly when AuditProb·Penalty ≥ 1.
func E11ExPostAudits(rounds int, seed int64) Table {
	t := Table{ID: "E11", Title: "ex-post protocol: audit probability vs honesty (§3.2.2.2)"}
	penalty := 4.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 1.0} {
		cfg := sim.Config{
			Rounds: rounds, NumBuyers: 30, Seed: seed,
			Mix:       map[sim.Behavior]float64{sim.Truthful: 0.5, sim.Strategic: 0.5},
			ValueMean: 100, ValueStd: 30,
		}
		m := sim.RunExPost(cfg, market.ExPost{AuditProb: q, Penalty: penalty})
		deter := "cheating pays"
		if q*penalty >= 1 {
			deter = "honesty optimal"
		}
		t.Rows = append(t.Rows, fmt.Sprintf(
			"audit_prob=%.2f (q·penalty=%.1f, %s) revenue=%.0f caught=%d/%d penalties=%.0f premium=%+.2f",
			q, q*penalty, deter, m.Revenue, m.CaughtCheats, m.Audits, m.PenaltiesPaid, m.TruthfulPremium))
	}
	return t
}

// E12DynamicArrival simulates streaming buyer/seller arrival (the
// dynamic-arrival market design line the paper builds on, §8.2): service
// rate and buyer abandonment as dataset supply accumulates.
func E12DynamicArrival(seed int64) Table {
	t := Table{ID: "E12", Title: "dynamic arrival: dataset supply vs buyer service rate (§8.2)"}
	base := sim.DynamicConfig{
		Rounds: 400, BuyerArrivalRate: 2, Patience: 4, MatchProb: 0.02, Seed: seed,
	}
	for _, rate := range []float64{0.02, 0.05, 0.1, 0.25, 0.5, 1.0} {
		cfg := base
		cfg.SellerArrivalRate = rate
		m := sim.RunDynamic(cfg)
		t.Rows = append(t.Rows, fmt.Sprintf(
			"seller_rate=%.2f arrived=%4d served=%4d abandoned=%4d service_rate=%.3f mean_wait=%.2f peak_queue=%d",
			rate, m.Arrived, m.Served, m.Abandoned, m.ServiceRate(), m.MeanWait, m.PeakQueue))
	}
	return t
}
