package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/engine"
	"repro/internal/license"
	"repro/internal/relation"
	"repro/internal/wal"
	"repro/internal/wtp"
)

// E14WALDurability measures the durable event log (internal/wal): a market
// workload is driven through a WAL-backed engine under each fsync policy,
// reporting sustained event-append throughput and the cost of recovery —
// loading the log back and rebuilding platform + engine state by replay.
// The determinism column confirms the recovered engine reports the same
// settlement count and epoch as the original (the property the crash/replay
// harness asserts byte-for-byte).
func E14WALDurability(epochs int, seed int64) (Table, error) {
	t := Table{ID: "E14", Title: "durable event log: WAL append throughput and replay recovery"}
	t.Rows = append(t.Rows, fmt.Sprintf("%-8s %12s %12s %12s %10s %s",
		"fsync", "events", "append/s", "recover_ms", "replayed", "deterministic"))

	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncEpoch, wal.SyncOff} {
		dir, err := os.MkdirTemp("", "e14-wal-")
		if err != nil {
			return t, err
		}
		defer os.RemoveAll(dir)

		w, err := wal.Open(wal.Options{Dir: dir, Policy: policy})
		if err != nil {
			return t, err
		}
		p, err := core.NewPlatform(core.Options{Design: "posted-baseline", Seed: seed})
		if err != nil {
			return t, err
		}
		eng := engine.New(p, engine.Config{Shards: 8, Persister: w})

		start := time.Now()
		for b := 0; b < 4; b++ {
			eng.SubmitRegister(fmt.Sprintf("buyer%02d", b), 1e6)
		}
		eng.TriggerEpoch()
		for ep := 0; ep < epochs; ep++ {
			for s := 0; s < 4; s++ {
				id := catalog.DatasetID(fmt.Sprintf("s%02d/e%d", s, ep))
				rel := relation.New(string(id), relation.NewSchema(
					relation.Col("a", relation.KindInt), relation.Col("b", relation.KindFloat)))
				for i := 0; i < 40; i++ {
					rel.MustAppend(relation.Int(int64(i)+seed), relation.Float(float64(i)))
				}
				eng.SubmitShare(fmt.Sprintf("seller%02d", s), id, rel,
					wtp.DatasetMeta{Dataset: string(id), HasProvenance: true},
					license.Terms{Kind: license.Open})
			}
			for b := 0; b < 4; b++ {
				eng.SubmitRequest(dod.Want{Columns: []string{"a", "b"}}, &wtp.Function{
					Buyer: fmt.Sprintf("buyer%02d", b),
					Task:  wtp.CoverageTask{Columns: []string{"a", "b"}, WantRows: 1},
					Curve: []wtp.CurvePoint{{MinSatisfaction: 0.5, Price: 150}},
				})
			}
			eng.TriggerEpoch()
		}
		eng.Stop()
		elapsed := time.Since(start)
		if err := w.Close(); err != nil {
			return t, err
		}
		stats := eng.Stats()
		if stats.PersistErr != "" {
			return t, fmt.Errorf("E14: persister wedged under %s: %s", policy, stats.PersistErr)
		}

		recoverStart := time.Now()
		p2, eng2, w2, res, err := wal.Boot(core.Options{Design: "posted-baseline", Seed: seed},
			engine.Config{Shards: 8}, wal.Options{Dir: dir, Policy: policy})
		if err != nil {
			return t, err
		}
		recoverMs := float64(time.Since(recoverStart).Microseconds()) / 1000
		eng2.Stop()
		w2.Close()
		_ = p2

		deterministic := eng2.Settlements().Count() == eng.Settlements().Count() &&
			eng2.Stats().Epochs == stats.Epochs &&
			eng2.Log().LastSeq() == eng.Log().LastSeq()
		t.Rows = append(t.Rows, fmt.Sprintf("%-8s %12d %12.0f %12.2f %10d %v",
			policy, stats.Events, float64(stats.Events)/elapsed.Seconds(), recoverMs,
			res.Replayed, deterministic))
	}
	return t, nil
}
