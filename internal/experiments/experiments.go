// Package experiments implements the reproduction harness: one function per
// experiment in DESIGN.md's per-experiment index (E1–E12), each derived from
// the paper's evaluation plan (§6) or a concrete claim in the text. Every
// function is deterministic and returns a formatted table; cmd/dmbench
// prints them all and bench_test.go wraps them in testing.B benchmarks.
// EXPERIMENTS.md records the expected shape of each table next to the
// paper's qualitative claim.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/license"
	"repro/internal/market"
	"repro/internal/mltask"
	"repro/internal/relation"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Table is a formatted experiment result.
type Table struct {
	ID    string
	Title string
	Rows  []string
}

// String renders the table.
func (t Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", t.ID, t.Title)
	for _, r := range t.Rows {
		sb.WriteString(r)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// E1EndToEnd runs the paper's §1 worked example through the full platform
// (Fig. 1 pipeline: design -> simulate -> deploy) and reports the outcome.
func E1EndToEnd(rows int, seed int64) (Table, error) {
	t := Table{ID: "E1", Title: "end-to-end §1 scenario (s1,s2,s3,b1)"}
	p, err := core.NewPlatform(core.Options{Design: "posted-baseline", Seed: seed})
	if err != nil {
		return t, err
	}
	ex := workload.NewPaperExample(rows, seed)
	if err := p.Seller("seller1").Share("s1", ex.S1, license.Terms{Kind: license.Open}); err != nil {
		return t, err
	}
	if err := p.Seller("seller2").Share("s2", ex.S2, license.Terms{Kind: license.Open}); err != nil {
		return t, err
	}
	b := p.Buyer("b1", 1000)
	if _, err := b.Need("a", "b", "d", "e").
		ForClassifier(mltask.ModelLogistic, []string{"b", "d", "e"}, "label", seed).
		Owning(ex.Truth).
		PayingAt(0.80, 100).PayingAt(0.90, 150).
		Submit(); err != nil {
		return t, err
	}
	res, err := p.MatchRound()
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, fmt.Sprintf("round 1: transactions=%d unmet=%v", len(res.Transactions), demandCols(p)))

	inv, _, err := dod.InferAffine("f_inv", []float64{32, 50, 212}, []float64{0, 10, 100})
	if err != nil {
		return t, err
	}
	p.Arbiter.DoD().RegisterTransform("s2", "f_of_temp", "d", inv)
	p.Seller("seller3")
	if _, err := p.Arbiter.AskOpportunisticSeller("seller3", func(col string) *relation.Relation {
		if col == "e" {
			return ex.S3
		}
		return nil
	}); err != nil {
		return t, err
	}
	res, err = p.MatchRound()
	if err != nil {
		return t, err
	}
	if len(res.Transactions) != 1 {
		return t, fmt.Errorf("E1: expected 1 transaction, got %d", len(res.Transactions))
	}
	tx := res.Transactions[0]
	t.Rows = append(t.Rows,
		fmt.Sprintf("round 2: mashup=%s rows=%d accuracy=%.3f price=%.2f", tx.Mashup.Name, tx.Mashup.NumRows(), tx.Satisfaction, tx.Price),
		fmt.Sprintf("revenue: arbiter=%.2f sellers=%v", tx.ArbiterCut, tx.SellerCuts),
		fmt.Sprintf("audit chain intact=%v", p.Arbiter.Ledger.VerifyChain() == -1),
	)
	return t, nil
}

func demandCols(p *core.Platform) []string {
	var out []string
	for _, s := range p.Arbiter.DemandSignals() {
		out = append(out, s.Column)
	}
	return out
}

// E2SimDesigns stresses five market designs under six behaviour mixes — the
// paper's §6.1 effectiveness plan ("implement different rules and change the
// behavior of players").
func E2SimDesigns(rounds int, seed int64) Table {
	t := Table{ID: "E2", Title: "market designs under non-rational populations (§6.1)"}
	mechs := []market.Mechanism{
		market.PostedPrice{P: 100},
		market.SecondPrice{},
		market.GSP{},
		market.RSOP{Seed: seed},
		market.ExPost{Deposit: 300, AuditProb: 0.3, Penalty: 4},
	}
	mixes := []map[sim.Behavior]float64{
		{sim.Truthful: 1},
		{sim.Truthful: 0.5, sim.Strategic: 0.5},
		{sim.Truthful: 0.5, sim.Adversarial: 0.5},
		{sim.Truthful: 0.5, sim.Ignorant: 0.5},
		{sim.Truthful: 0.5, sim.RiskLover: 0.5},
		{sim.Truthful: 0.7, sim.Faulty: 0.3},
	}
	for _, mix := range mixes {
		for _, m := range mechs {
			cfg := sim.Config{Rounds: rounds, NumBuyers: 30, Supply: 1, Seed: seed, Mix: mix, ValueMean: 100, ValueStd: 30}
			t.Rows = append(t.Rows, sim.Run(cfg, m).String())
		}
		t.Rows = append(t.Rows, "")
	}
	return t
}

// E3Coalitions sweeps adversarial coalition size against revenue (§6.1:
// "players may ... form coalitions with other players to game the market").
func E3Coalitions(rounds int, seed int64) Table {
	t := Table{ID: "E3", Title: "revenue vs adversarial coalition size"}
	fracs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	for _, mech := range []market.Mechanism{market.SecondPrice{}, market.PostedPrice{P: 100}, market.RSOP{Seed: seed}} {
		cfg := sim.Config{Rounds: rounds, NumBuyers: 30, Supply: 1, Seed: seed, ValueMean: 100, ValueStd: 30}
		res := sim.CoalitionSweep(cfg, mech, fracs)
		for i, m := range res {
			t.Rows = append(t.Rows, fmt.Sprintf("%-18s coalition=%.0f%% revenue=%.0f volume=%d efficiency=%.3f",
				mech.Name(), fracs[i]*100, m.Revenue, m.Volume, m.Efficiency))
		}
		t.Rows = append(t.Rows, "")
	}
	return t
}

// E4MechanismScaling measures allocation+payment runtime as the number of
// bidders grows — the "practical / computationally efficient" requirement of
// §3.1.
func E4MechanismScaling(seed int64) Table {
	t := Table{ID: "E4", Title: "mechanism runtime vs #buyers (allocation+payment, §3.1 practicality)"}
	sizes := []int{10, 100, 1000, 10000}
	mechs := []market.Mechanism{market.PostedPrice{P: 100}, market.SecondPrice{}, market.RSOP{Seed: seed}}
	for _, mech := range mechs {
		for _, n := range sizes {
			bids := syntheticBids(n, seed)
			start := time.Now()
			iters := 0
			for time.Since(start) < 20*time.Millisecond || iters < 3 {
				mech.Run(bids, market.SupplyUnlimited)
				iters++
			}
			per := time.Since(start) / time.Duration(iters)
			t.Rows = append(t.Rows, fmt.Sprintf("%-18s n=%6d time/run=%12v", mech.Name(), n, per))
		}
		t.Rows = append(t.Rows, "")
	}
	return t
}

func syntheticBids(n int, seed int64) []market.Bid {
	bids := make([]market.Bid, n)
	x := uint64(seed)*2654435761 + 12345
	for i := range bids {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		bids[i] = market.Bid{Buyer: fmt.Sprintf("b%06d", i), Offer: 50 + float64(x%100)}
	}
	return bids
}

// E5Shapley compares exact Shapley against Monte-Carlo approximations:
// runtime and L1 allocation error (§3.2.3: "alternative approaches that are
// more computationally efficient").
func E5Shapley(seed int64) Table {
	t := Table{ID: "E5", Title: "revenue allocation: exact Shapley vs Monte-Carlo (runtime, L1 error)"}
	for _, n := range []int{4, 8, 12, 16} {
		players := make([]string, n)
		vals := map[string]float64{}
		for i := range players {
			players[i] = fmt.Sprintf("d%02d", i)
			vals[players[i]] = float64(1 + i*i%7)
		}
		// Superadditive game with synergies: pairs add bonus.
		v := func(s map[string]bool) float64 {
			var sum float64
			for p := range s {
				sum += vals[p]
			}
			return sum + 0.1*float64(len(s)*len(s))
		}
		start := time.Now()
		exact := market.ShapleyExact{}.Allocate(players, v)
		exactTime := time.Since(start)
		t.Rows = append(t.Rows, fmt.Sprintf("n=%2d exact       time=%12v", n, exactTime))
		for _, samples := range []int{50, 200, 1000} {
			start = time.Now()
			mc := market.ShapleyMonteCarlo{Samples: samples, Seed: seed}.Allocate(players, v)
			mcTime := time.Since(start)
			t.Rows = append(t.Rows, fmt.Sprintf("n=%2d mc(%5d)   time=%12v l1err=%.4f",
				n, samples, mcTime, market.ShapleyError(exact, mc)))
		}
		start = time.Now()
		loo := market.LeaveOneOut{}.Allocate(players, v)
		t.Rows = append(t.Rows, fmt.Sprintf("n=%2d leave1out   time=%12v l1err=%.4f",
			n, time.Since(start), market.ShapleyError(exact, loo)))
		t.Rows = append(t.Rows, "")
	}
	// Monte-Carlo beyond exact feasibility.
	big := make([]string, 64)
	for i := range big {
		big[i] = fmt.Sprintf("d%02d", i)
	}
	v := func(s map[string]bool) float64 { return float64(len(s)) }
	start := time.Now()
	market.ShapleyMonteCarlo{Samples: 200, Seed: seed}.Allocate(big, v)
	t.Rows = append(t.Rows, fmt.Sprintf("n=64 mc(  200)   time=%12v (exact infeasible: 2^64 coalitions)", time.Since(start)))
	return t
}
