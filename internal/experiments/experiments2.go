package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/catalog"
	"repro/internal/discovery"
	"repro/internal/dod"
	"repro/internal/index"
	"repro/internal/mltask"
	"repro/internal/privacy"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E6MashupBuilder measures metadata-engine + index-builder + DoD runtime as
// the data lake grows (§5: Aurum-style discovery at thousands of datasets),
// including the LSH-vs-exhaustive ablation from DESIGN.md.
func E6MashupBuilder(seed int64) Table {
	t := Table{ID: "E6", Title: "mashup builder scaling: profile, index (LSH vs exhaustive), DoD search"}
	for _, n := range []int{10, 50, 100, 250} {
		tables := workload.LakeTables(n, 100, seed)
		start := time.Now()
		profs := make([]*profile.DatasetProfile, len(tables))
		cat := catalog.New()
		for i, r := range tables {
			profs[i] = profile.Profile(r.Name, r)
			_ = cat.Register(catalog.DatasetID(r.Name), "lake", r)
		}
		profTime := time.Since(start)

		start = time.Now()
		ixLSH := index.Build(index.DefaultConfig(), profs)
		lshTime := time.Since(start)

		cfgEx := index.DefaultConfig()
		cfgEx.Exhaustive = true
		start = time.Now()
		ixEx := index.Build(cfgEx, profs)
		exTime := time.Since(start)

		// DoD search: ask for a 2-table combination within a cluster.
		eng := dod.New(cat, discovery.New(ixLSH))
		want := dod.Want{Columns: []string{"key_c0", "val_0_a", tables[min(10, n-1)].Schema[1].Name}}
		start = time.Now()
		cands, err := eng.Build(want)
		dodTime := time.Since(start)
		nc := 0
		if err == nil {
			nc = len(cands)
		}
		t.Rows = append(t.Rows, fmt.Sprintf(
			"datasets=%4d profile=%10v index_lsh=%10v (edges %4d) index_exhaustive=%10v (edges %4d) dod=%10v cands=%d",
			n, profTime, lshTime, ixLSH.NumEdges(), exTime, ixEx.NumEdges(), dodTime, nc))
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// E7PrivacyValue sweeps the differential-privacy epsilon against the buyer's
// realized task accuracy and the price the WTP curve yields — the
// privacy-value connection (§8.2): "the higher the privacy level, the less
// the dataset is perturbed ... the higher the price".
func E7PrivacyValue(seed int64) Table {
	t := Table{ID: "E7", Title: "privacy-value tradeoff: ε vs task accuracy vs price (§8.2)"}
	base := workload.PIITable(3000, seed)
	task := mltask.ClassifierTask{
		Features: []string{"salary", "age"}, Label: "quit",
		Model: mltask.ModelLogistic, Seed: seed,
	}
	curve := []struct {
		minSat, price float64
	}{{0.70, 50}, {0.80, 100}, {0.85, 150}}
	price := func(sat float64) float64 {
		p := 0.0
		for _, c := range curve {
			if sat >= c.minSat {
				p = c.price
			}
		}
		return p
	}
	accClean, err := task.Evaluate(base)
	if err != nil {
		t.Rows = append(t.Rows, "error: "+err.Error())
		return t
	}
	t.Rows = append(t.Rows, fmt.Sprintf("ε=   ∞ (no noise)  accuracy=%.3f price=%6.2f", accClean, price(accClean)))
	for _, eps := range []float64{10, 4, 2, 1, 0.5, 0.25, 0.1} {
		rng := rand.New(rand.NewSource(seed))
		noised, err := privacy.LaplaceColumn(base, "salary", eps, 5000, rng)
		if err != nil {
			continue
		}
		acc, err := task.Evaluate(noised)
		if err != nil {
			continue
		}
		t.Rows = append(t.Rows, fmt.Sprintf("ε=%4.2f            accuracy=%.3f price=%6.2f", eps, acc, price(acc)))
	}
	return t
}

// E8ThinMarket reports trade volume as the arbiter is allowed to combine
// more datasets per mashup — mashups "avoid thin markets" (§8.2).
func E8ThinMarket(seed int64) Table {
	t := Table{ID: "E8", Title: "thin markets: trade rate vs mashup combination limit (§8.2)"}
	cfg := sim.ThinConfig{
		Universe: 24, Sellers: 14, AttrsPerSeller: 8,
		Buyers: 500, AttrsPerBuyer: 6, Seed: seed,
	}
	for _, res := range sim.ThinSweep(cfg, []int{1, 2, 3, 4, 5}) {
		t.Rows = append(t.Rows, fmt.Sprintf("max_combine=%d satisfied=%4d/%4d trade_rate=%.3f",
			res.MaxCombine, res.Satisfied, res.Buyers, res.Rate()))
	}
	return t
}
