package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/engine"
	"repro/internal/ledger"
	"repro/internal/license"
	"repro/internal/relation"
	"repro/internal/wtp"
)

// E13EngineThroughput measures the concurrent market engine (internal/
// engine) under parallel load: `sellers`+`buyers` goroutines submit shares
// and WTP-task requests into the sharded intake each round, one epoch clears
// the batch, and the table reports per-epoch applied/matched counts plus
// sustained matches/sec and the conservation verdicts. This is the service
// workload the synchronous core.Platform could not express: many writers,
// one batched MatchRound per epoch.
func E13EngineThroughput(sellers, buyers, epochs int, seed int64) (Table, error) {
	t := Table{ID: "E13", Title: "concurrent engine: sharded intake, epoch-batched matching"}
	p, err := core.NewPlatform(core.Options{Design: "posted-baseline", Seed: seed})
	if err != nil {
		return t, err
	}
	eng := engine.New(p, engine.Config{Shards: 8})
	defer eng.Stop()

	var initial float64
	for b := 0; b < buyers; b++ {
		funds := 1000.0 * float64(epochs)
		eng.SubmitRegister(fmt.Sprintf("buyer%02d", b), funds)
		initial += funds
	}
	eng.TriggerEpoch()

	mkRel := func(name string, rows int) *relation.Relation {
		r := relation.New(name, relation.NewSchema(
			relation.Col("a", relation.KindInt), relation.Col("b", relation.KindFloat)))
		for i := 0; i < rows; i++ {
			r.MustAppend(relation.Int(int64(i)+seed), relation.Float(float64(i)))
		}
		return r
	}

	start := time.Now()
	for ep := 0; ep < epochs; ep++ {
		var wg sync.WaitGroup
		for s := 0; s < sellers; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				name := fmt.Sprintf("seller%02d", s)
				id := catalog.DatasetID(fmt.Sprintf("%s/e%d", name, ep))
				eng.SubmitShare(name, id, mkRel(string(id), 50),
					wtp.DatasetMeta{Dataset: string(id), HasProvenance: true},
					license.Terms{Kind: license.Open})
			}(s)
		}
		for b := 0; b < buyers; b++ {
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				eng.SubmitRequest(
					dod.Want{Columns: []string{"a", "b"}},
					&wtp.Function{
						Buyer: fmt.Sprintf("buyer%02d", b),
						Task:  wtp.CoverageTask{Columns: []string{"a", "b"}, WantRows: 1},
						Curve: []wtp.CurvePoint{{MinSatisfaction: 0.5, Price: 200}},
					})
			}(b)
		}
		wg.Wait()
		before := eng.Stats().Matched
		eng.TriggerEpoch()
		after := eng.Stats()
		t.Rows = append(t.Rows, fmt.Sprintf(
			"epoch=%d submitters=%d applied=%d matched_this_epoch=%d open=%d",
			ep+1, sellers+buyers, sellers+buyers, after.Matched-before, after.OpenRequests))
	}
	elapsed := time.Since(start)
	eng.Stop()

	st := eng.Stats()
	mps := float64(st.Matched) / elapsed.Seconds()
	supplyOK := p.Arbiter.Ledger.TotalSupply() == ledger.FromFloat(initial)
	t.Rows = append(t.Rows, fmt.Sprintf(
		"total: epochs=%d submitted=%d matched=%d matches/sec=%.0f events=%d",
		st.Epochs, st.Submitted, st.Matched, mps, st.Events))
	t.Rows = append(t.Rows, fmt.Sprintf(
		"conservation: settlements=%d credits==debits=%v money_supply_intact=%v audit_chain_intact=%v",
		eng.Settlements().Count(), eng.Settlements().Conserved(), supplyOK,
		p.Arbiter.Ledger.VerifyChain() == -1))
	return t, nil
}
