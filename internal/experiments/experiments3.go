package experiments

import (
	"fmt"

	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/license"
	"repro/internal/market"
	"repro/internal/relation"
)

// E9Arbitrage runs the §7.1 arbitrageur loop — buy open data, transform,
// resell — and audits price monotonicity: a derivative only earns a margin
// when buyers value the transformation, never by re-selling identical data
// at a markup through the same posted mechanism (the query-pricing
// arbitrage-freeness intuition of §8.2 applied at dataset granularity).
func E9Arbitrage(seed int64) (Table, error) {
	t := Table{ID: "E9", Title: "arbitrageur economy: buy, transform, resell (§7.1)"}
	design := &market.Design{
		Label: "arb", Goal: market.GoalRevenue, Type: market.TypeExternal,
		Elicitation: market.ElicitUpfront,
		Mechanism:   market.SecondPrice{Reserve: 10},
		Allocator:   market.LeaveOneOut{},
		ArbiterFee:  0.05,
	}
	p, err := core.NewPlatform(core.Options{CustomDesign: design, Seed: seed})
	if err != nil {
		return t, err
	}
	base := relation.New("base", relation.NewSchema(
		relation.Col("k", relation.KindInt), relation.Col("raw", relation.KindFloat)))
	for i := 0; i < 500; i++ {
		base.MustAppend(relation.Int(int64(i)), relation.Float(float64(i%37)))
	}
	if err := p.Seller("origin").Share("base", base, license.Terms{Kind: license.Open}); err != nil {
		return t, err
	}

	// Step 1: arbitrageur buys the raw data.
	arb := p.Buyer("arb", 1000)
	if _, err := arb.Need("k", "raw").ForCoverage(500).PayingAt(0.9, 30).Submit(); err != nil {
		return t, err
	}
	res, err := p.MatchRound()
	if err != nil || len(res.Transactions) != 1 {
		return t, fmt.Errorf("E9: buy leg failed: %v", res)
	}
	buyPrice := res.Transactions[0].Price
	t.Rows = append(t.Rows, fmt.Sprintf("buy leg: arbitrageur paid %.2f for raw data", buyPrice))

	// Step 2a: resell *identical* data — no buyer values it above the
	// original (they could buy the original), so margin is zero/negative.
	identical := res.Transactions[0].Mashup.Clone()
	identical.Name = "base_copy"
	if err := p.Seller("arb").Share("base_copy", identical, license.Terms{Kind: license.Open}); err != nil {
		return t, err
	}
	// Step 2b: resell a *transformed* derivative buyers actually want.
	derived := relation.AddColumn(res.Transactions[0].Mashup, relation.Col("normalized", relation.KindFloat),
		func(row []relation.Value, s relation.Schema) relation.Value {
			return relation.Float(row[s.IndexOf("raw")].AsFloat() / 37)
		})
	derived.Name = "base_norm"
	// The derivative sells under an exclusive license, so demand (not the
	// reserve) sets its auction price.
	if err := p.Seller("arb").Share("base_norm", derived, license.Terms{Kind: license.Exclusive}); err != nil {
		return t, err
	}

	// Buyer 1 wants raw only: the DoD can serve either base or base_copy;
	// price discovery keeps the copy from extracting a markup.
	b1 := p.Buyer("rawbuyer", 1000)
	if _, err := b1.Need("k", "raw").ForCoverage(500).PayingAt(0.9, 30).Submit(); err != nil {
		return t, err
	}
	// Buyers 2 and 3 compete for the normalized feature only the
	// derivative has; the exclusive license makes it a single-unit Vickrey.
	b2 := p.Buyer("normbuyer", 1000)
	if _, err := b2.Need("k", "normalized").ForCoverage(500).PayingAt(0.9, 80).Submit(); err != nil {
		return t, err
	}
	b3 := p.Buyer("normbuyer2", 1000)
	if _, err := b3.Need("k", "normalized").ForCoverage(500).PayingAt(0.9, 60).Submit(); err != nil {
		return t, err
	}
	res, err = p.MatchRound()
	if err != nil {
		return t, err
	}
	var rawCut, normCut float64
	for _, tx := range res.Transactions {
		cut := tx.SellerCuts["arb"]
		if tx.Mashup.Schema.Has("normalized") {
			normCut += cut
			t.Rows = append(t.Rows, fmt.Sprintf("resell transformed: %s paid %.2f, arbitrageur cut %.2f", tx.Buyer, tx.Price, cut))
		} else {
			rawCut += cut
			t.Rows = append(t.Rows, fmt.Sprintf("resell identical:   %s paid %.2f, arbitrageur cut %.2f", tx.Buyer, tx.Price, cut))
		}
	}
	t.Rows = append(t.Rows,
		fmt.Sprintf("margin on identical copy: %.2f (no transformation, no premium)", rawCut-buyPrice),
		fmt.Sprintf("margin on derivative:     %.2f (transformation earns the spread)", normCut-buyPrice),
	)
	if p.Arbiter.Ledger.VerifyChain() != -1 {
		return t, fmt.Errorf("E9: audit chain corrupt")
	}
	return t, nil
}

// E10Negotiation sweeps seller cooperation probability against mashup
// completion: negotiation rounds (§4.1) convert otherwise-unsatisfiable
// requests into trades when sellers reveal mapping information.
func E10Negotiation(seed int64) (Table, error) {
	t := Table{ID: "E10", Title: "negotiation rounds: seller cooperation vs completed requests (§4.1)"}
	for _, coop := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		completed, total, err := negotiationTrial(coop, seed)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, fmt.Sprintf("cooperation=%.2f completed=%d/%d", coop, completed, total))
	}
	return t, nil
}

func negotiationTrial(coop float64, seed int64) (completed, total int, err error) {
	const trials = 8
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return float64(x%10000) / 10000
	}
	for trial := 0; trial < trials; trial++ {
		design := &market.Design{
			Label: "neg", Mechanism: market.PostedPrice{P: 10},
			Allocator: market.Uniform{},
		}
		p, perr := core.NewPlatform(core.Options{CustomDesign: design, Seed: seed + int64(trial)})
		if perr != nil {
			return 0, 0, perr
		}
		// Seller's dataset holds tokens; buyers want the decoded column.
		data := relation.New("enc", relation.NewSchema(
			relation.Col("k", relation.KindInt), relation.Col("tok", relation.KindString)))
		mapping := relation.New("map", relation.NewSchema(
			relation.Col("tok", relation.KindString), relation.Col("city", relation.KindString)))
		for i := 0; i < 100; i++ {
			tok := fmt.Sprintf("T%03d", i)
			data.MustAppend(relation.Int(int64(i)), relation.String_(tok))
			mapping.MustAppend(relation.String_(tok), relation.String_(fmt.Sprintf("city%03d", i)))
		}
		if err := p.Seller("s").Share("enc", data, license.Terms{Kind: license.Open}); err != nil {
			return 0, 0, err
		}
		b := p.Buyer("b", 100)
		if _, err := b.Need("k", "city").ForCoverage(100).PayingAt(0.99, 20).Submit(); err != nil {
			return 0, 0, err
		}
		if _, err := p.MatchRound(); err != nil {
			return 0, 0, err
		}
		// Negotiation: the seller responds with probability coop.
		p.Arbiter.NegotiationRound(map[string]arbiter.SellerResponder{
			"s": func(req arbiter.InfoRequest) *relation.Relation {
				if req.Column == "tok" && req.Target == "city" && next() < coop {
					return mapping
				}
				return nil
			},
		})
		res, err := p.MatchRound()
		if err != nil {
			return 0, 0, err
		}
		total++
		if len(res.Transactions) > 0 {
			completed++
		}
	}
	return completed, total, nil
}
