package discovery

import (
	"fmt"
	"testing"

	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/relation"
)

func mkEngine() *Engine {
	orders := relation.New("orders", relation.NewSchema(
		relation.Col("order_id", relation.KindInt),
		relation.Col("cust_id", relation.KindInt),
		relation.Col("total", relation.KindFloat),
	))
	customers := relation.New("customers", relation.NewSchema(
		relation.Col("cust_id", relation.KindInt),
		relation.Col("customer_name", relation.KindString),
	))
	for i := 0; i < 100; i++ {
		orders.MustAppend(relation.Int(int64(i)), relation.Int(int64(i%40)), relation.Float(float64(i)))
	}
	for i := 0; i < 40; i++ {
		customers.MustAppend(relation.Int(int64(i)), relation.String_(fmt.Sprintf("name%d", i)))
	}
	ix := index.Build(index.DefaultConfig(), []*profile.DatasetProfile{
		profile.Profile("orders", orders),
		profile.Profile("customers", customers),
	})
	return New(ix)
}

func TestSearchColumns(t *testing.T) {
	e := mkEngine()
	hits := e.SearchColumns("customer")
	if len(hits) == 0 {
		t.Fatal("no hits for 'customer'")
	}
	if hits[0].Ref.Dataset != "customers" {
		t.Errorf("top hit = %v", hits[0])
	}
	if len(e.SearchColumns()) != 0 {
		t.Error("empty keywords return nothing")
	}
	multi := e.SearchColumns("order", "total")
	if len(multi) < 2 {
		t.Errorf("multi-keyword hits = %v", multi)
	}
	for _, h := range multi {
		if h.Score <= 0 || h.Score > 1 {
			t.Errorf("score out of range: %v", h)
		}
	}
}

func TestSimilarColumns(t *testing.T) {
	e := mkEngine()
	hits := e.SimilarColumns("orders", "cust_id")
	if len(hits) == 0 {
		t.Fatal("cust_id should have a similar column in customers")
	}
	if hits[0].Ref != (index.ColRef{Dataset: "customers", Column: "cust_id"}) {
		t.Errorf("top similar = %v", hits[0].Ref)
	}
	if len(e.SimilarColumns("orders", "no_such")) != 0 {
		t.Error("unknown column yields nothing")
	}
}

func TestJoinableDatasets(t *testing.T) {
	e := mkEngine()
	hits := e.JoinableDatasets("orders")
	if len(hits) != 1 || hits[0].Ref.Dataset != "customers" {
		t.Fatalf("joinable = %v", hits)
	}
	if hits[0].Score <= 0 {
		t.Error("joinable score must be positive")
	}
}

func TestKeyColumns(t *testing.T) {
	e := mkEngine()
	keys := e.KeyColumns("orders")
	found := false
	for _, k := range keys {
		if k == "order_id" {
			found = true
		}
		if k == "cust_id" {
			t.Error("cust_id repeats values; must not be key-like")
		}
	}
	if !found {
		t.Errorf("keys = %v, want order_id", keys)
	}
	if e.KeyColumns("ghost") != nil {
		t.Error("unknown dataset has no keys")
	}
}
