// Package discovery is the data-discovery API of the Mashup Builder (the
// Aurum role in the paper, §5): given the indexes built by internal/index it
// answers the three questions DoD and human analysts ask — which columns
// match a keyword, which columns are content-similar to a given column, and
// which datasets are joinable with a given dataset.
package discovery

import (
	"sort"

	"repro/internal/index"
	"repro/internal/profile"
)

// Engine wraps an index with search operations.
type Engine struct {
	ix *index.Index
}

// New creates a discovery engine over a built index.
func New(ix *index.Index) *Engine { return &Engine{ix: ix} }

// Hit is one search result with a relevance score in (0,1].
type Hit struct {
	Ref   index.ColRef
	Score float64
}

// SearchColumns finds columns matching any of the keywords, scored by the
// fraction of keywords hit (column-name token hits count double value hits).
func (e *Engine) SearchColumns(keywords ...string) []Hit {
	if len(keywords) == 0 {
		return nil
	}
	scores := map[index.ColRef]float64{}
	for _, kw := range keywords {
		for _, tok := range index.Tokenize(kw) {
			for _, ref := range e.ix.Lookup(tok) {
				scores[ref] += 1.0 / float64(len(keywords))
			}
		}
	}
	out := make([]Hit, 0, len(scores))
	for ref, s := range scores {
		if s > 1 {
			s = 1
		}
		out = append(out, Hit{Ref: ref, Score: s})
	}
	sortHits(out)
	return out
}

// SimilarColumns returns columns whose content overlaps the given column,
// ranked by estimated Jaccard.
func (e *Engine) SimilarColumns(dataset, column string) []Hit {
	var out []Hit
	for _, edge := range e.ix.EdgesFor(dataset) {
		var other index.ColRef
		switch {
		case edge.A.Dataset == dataset && edge.A.Column == column:
			other = edge.B
		case edge.B.Dataset == dataset && edge.B.Column == column:
			other = edge.A
		default:
			continue
		}
		out = append(out, Hit{Ref: other, Score: edge.Jaccard})
	}
	sortHits(out)
	return out
}

// JoinableDatasets returns datasets sharing at least one high-containment
// join edge with the given dataset, with the best edge score.
func (e *Engine) JoinableDatasets(dataset string) []Hit {
	best := map[string]float64{}
	bestCol := map[string]index.ColRef{}
	for _, edge := range e.ix.EdgesFor(dataset) {
		other := edge.B
		if other.Dataset == dataset {
			other = edge.A
		}
		if other.Dataset == dataset {
			continue
		}
		if edge.Containment > best[other.Dataset] {
			best[other.Dataset] = edge.Containment
			bestCol[other.Dataset] = other
		}
	}
	out := make([]Hit, 0, len(best))
	for _, ref := range bestCol {
		out = append(out, Hit{Ref: ref, Score: best[ref.Dataset]})
	}
	sortHits(out)
	return out
}

// KeyColumns returns the key-like columns of a dataset (join anchors).
func (e *Engine) KeyColumns(dataset string) []string {
	dp := e.ix.Profile(dataset)
	if dp == nil {
		return nil
	}
	var out []string
	for i := range dp.Columns {
		if dp.Columns[i].IsKeyLike() {
			out = append(out, dp.Columns[i].Column)
		}
	}
	sort.Strings(out)
	return out
}

// Profile exposes the stored dataset profile.
func (e *Engine) Profile(dataset string) *profile.DatasetProfile { return e.ix.Profile(dataset) }

// Index exposes the underlying index (the DoD engine needs the join graph).
func (e *Engine) Index() *index.Index { return e.ix }

func sortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		if hits[i].Ref.Dataset != hits[j].Ref.Dataset {
			return hits[i].Ref.Dataset < hits[j].Ref.Dataset
		}
		return hits[i].Ref.Column < hits[j].Ref.Column
	})
}
