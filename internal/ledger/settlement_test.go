package ledger

import (
	"fmt"
	"sync"
	"testing"
)

func TestSettlementBookConservation(t *testing.T) {
	b := NewSettlementBook()
	b.Record(Settlement{
		TxID: "tx-1", Epoch: 1, Buyer: "b1", Price: FromFloat(100),
		ArbiterCut: FromFloat(10),
		SellerCuts: map[string]Currency{"s1": FromFloat(45), "s2": FromFloat(45)},
	})
	b.Record(Settlement{
		TxID: "tx-2", Epoch: 2, Buyer: "b2", Price: FromFloat(60),
		ArbiterCut: FromFloat(6),
		SellerCuts: map[string]Currency{"s1": FromFloat(54)},
	})
	if !b.Conserved() {
		t.Fatal("balanced settlements reported unconserved")
	}
	if got := b.Debits(); got != FromFloat(160) {
		t.Fatalf("debits: want 160, got %s", got)
	}
	if got := b.Credits(); got != FromFloat(160) {
		t.Fatalf("credits: want 160, got %s", got)
	}
	if got := b.Epochs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("epochs: %v", got)
	}

	// A leaky settlement (price not fully fanned out) breaks conservation.
	b.Record(Settlement{
		TxID: "tx-3", Epoch: 3, Buyer: "b3", Price: FromFloat(100),
		ArbiterCut: FromFloat(10),
		SellerCuts: map[string]Currency{"s1": FromFloat(50)},
	})
	if b.Conserved() {
		t.Fatal("missing 40 units went undetected")
	}
}

func TestSettlementBookExPostSkipped(t *testing.T) {
	b := NewSettlementBook()
	// Ex-post: deposit escrowed, cuts unknown until the report — must not
	// count against conservation or the credit/debit totals.
	b.Record(Settlement{TxID: "tx-1", Epoch: 1, Buyer: "b1", Price: FromFloat(500), ExPost: true})
	if !b.Conserved() {
		t.Fatal("ex-post settlement should be skipped by Conserved")
	}
	if b.Debits() != 0 || b.Credits() != 0 {
		t.Fatalf("ex-post settlement leaked into totals: debits=%s credits=%s", b.Debits(), b.Credits())
	}
	if b.Count() != 1 {
		t.Fatalf("count: want 1, got %d", b.Count())
	}
}

func TestSettlementBookRoundingTolerance(t *testing.T) {
	b := NewSettlementBook()
	// Each cut may round by one micro-unit; a 3-way split may be off by up
	// to len(cuts)+1 micro-units in total and still conserve.
	b.Record(Settlement{
		TxID: "tx-1", Epoch: 1, Buyer: "b1", Price: FromFloat(100),
		ArbiterCut: FromFloat(100.0 / 3),
		SellerCuts: map[string]Currency{
			"s1": FromFloat(100.0 / 3),
			"s2": FromFloat(100.0 / 3),
		},
	})
	if !b.Conserved() {
		t.Fatal("micro-unit rounding should be tolerated")
	}
}

func TestSettlementBookConcurrent(t *testing.T) {
	b := NewSettlementBook()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b.Record(Settlement{
					TxID: fmt.Sprintf("tx-%d-%d", g, i), Epoch: uint64(g),
					Buyer: "b", Price: FromFloat(10), ArbiterCut: FromFloat(1),
					SellerCuts: map[string]Currency{"s": FromFloat(9)},
				})
			}
		}(g)
	}
	wg.Wait()
	if b.Count() != 400 {
		t.Fatalf("count: want 400, got %d", b.Count())
	}
	if !b.Conserved() {
		t.Fatal("conservation violated")
	}
	if len(b.All()) != 400 || len(b.Epochs()) != 8 {
		t.Fatalf("All/Epochs inconsistent: %d/%d", len(b.All()), len(b.Epochs()))
	}
}
