package ledger

import (
	"sort"
	"sync"
)

// Settlement is one cleared sale as derived from the engine's tx-settled
// events: what the buyer paid and how the revenue was carved up. It is the
// ledger-side mirror of an arbiter.Transaction, kept by a subscriber so
// settlement accounting survives independently of the arbiter's in-memory
// history.
type Settlement struct {
	TxID       string
	Epoch      uint64
	Buyer      string
	Price      Currency
	ArbiterCut Currency
	SellerCuts map[string]Currency
	// ExPost settlements escrow the deposit at delivery and price on the
	// buyer's later report, so their cuts are not yet final.
	ExPost bool
}

// credits sums the revenue fan-out (arbiter fee plus seller shares).
func (s Settlement) credits() Currency {
	total := s.ArbiterCut
	for _, c := range s.SellerCuts {
		total += c
	}
	return total
}

// SettlementBook records settlements consumed from the engine's event log
// and checks the market's conservation invariant: every settled price is
// fully accounted for by the arbiter cut plus the seller cuts.
type SettlementBook struct {
	mu          sync.Mutex
	settlements []Settlement
}

// NewSettlementBook creates an empty book.
func NewSettlementBook() *SettlementBook {
	return &SettlementBook{}
}

// Record appends one settlement.
func (b *SettlementBook) Record(s Settlement) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.settlements = append(b.settlements, s)
}

// Count returns the number of recorded settlements.
func (b *SettlementBook) Count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.settlements)
}

// All returns a copy of every settlement in record order.
func (b *SettlementBook) All() []Settlement {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Settlement, len(b.settlements))
	copy(out, b.settlements)
	return out
}

// Epochs returns the distinct epochs that produced settlements, ascending.
func (b *SettlementBook) Epochs() []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	seen := map[uint64]bool{}
	var out []uint64
	for _, s := range b.settlements {
		if !seen[s.Epoch] {
			seen[s.Epoch] = true
			out = append(out, s.Epoch)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Debits sums what buyers paid across all upfront settlements.
func (b *SettlementBook) Debits() Currency {
	b.mu.Lock()
	defer b.mu.Unlock()
	var total Currency
	for _, s := range b.settlements {
		if !s.ExPost {
			total += s.Price
		}
	}
	return total
}

// Credits sums what the arbiter and sellers received across all upfront
// settlements.
func (b *SettlementBook) Credits() Currency {
	b.mu.Lock()
	defer b.mu.Unlock()
	var total Currency
	for _, s := range b.settlements {
		if !s.ExPost {
			total += s.credits()
		}
	}
	return total
}

// Conserved verifies credits == debits for every upfront settlement, within
// a per-settlement tolerance covering FromFloat rounding of the individual
// cuts (one micro-unit per cut plus one for the fee). Ex-post settlements
// are skipped: their revenue split happens at report time.
func (b *SettlementBook) Conserved() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range b.settlements {
		if s.ExPost {
			continue
		}
		diff := s.Price - s.credits()
		if diff < 0 {
			diff = -diff
		}
		if diff > Currency(len(s.SellerCuts)+1) {
			return false
		}
	}
	return true
}
