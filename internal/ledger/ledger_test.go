package ledger

import (
	"testing"
	"testing/quick"
)

func TestOpenDepositTransfer(t *testing.T) {
	l := New()
	if err := l.Open("b1", FromFloat(100)); err != nil {
		t.Fatal(err)
	}
	if err := l.Open("s1", 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Open("b1", 0); err == nil {
		t.Error("double open must fail")
	}
	if err := l.Transfer("b1", "s1", FromFloat(30), "sale"); err != nil {
		t.Fatal(err)
	}
	if l.Balance("b1").Float() != 70 || l.Balance("s1").Float() != 30 {
		t.Errorf("balances %v/%v", l.Balance("b1"), l.Balance("s1"))
	}
	if err := l.Transfer("b1", "s1", FromFloat(1000), ""); err == nil {
		t.Error("overdraft must fail")
	}
	if err := l.Transfer("ghost", "s1", 1, ""); err == nil {
		t.Error("unknown from must fail")
	}
	if err := l.Transfer("b1", "ghost", 1, ""); err == nil {
		t.Error("unknown to must fail")
	}
	if err := l.Transfer("b1", "s1", -1, ""); err == nil {
		t.Error("negative transfer must fail")
	}
	if err := l.Deposit("s1", FromFloat(5)); err != nil {
		t.Fatal(err)
	}
	if err := l.Deposit("ghost", 1); err == nil {
		t.Error("deposit to unknown account must fail")
	}
}

func TestEscrowLifecycle(t *testing.T) {
	l := New()
	_ = l.Open("buyer", FromFloat(100))
	_ = l.Open("seller", 0)
	if err := l.Hold("tx1", "buyer", FromFloat(40), "ex post deposit"); err != nil {
		t.Fatal(err)
	}
	if l.Balance("buyer").Float() != 60 {
		t.Errorf("buyer after hold = %v", l.Balance("buyer"))
	}
	if l.Escrowed("tx1").Float() != 40 {
		t.Errorf("escrowed = %v", l.Escrowed("tx1"))
	}
	if err := l.Hold("tx1", "buyer", 1, ""); err == nil {
		t.Error("duplicate escrow ID must fail")
	}
	// Release 25 to seller; 15 refunds to buyer.
	if err := l.Release("tx1", "seller", FromFloat(25), "payment"); err != nil {
		t.Fatal(err)
	}
	if l.Balance("seller").Float() != 25 {
		t.Errorf("seller = %v", l.Balance("seller"))
	}
	if l.Balance("buyer").Float() != 75 {
		t.Errorf("buyer after refund = %v", l.Balance("buyer"))
	}
	if l.Escrowed("tx1") != 0 {
		t.Error("escrow must close")
	}
	if err := l.Release("tx1", "seller", 1, ""); err == nil {
		t.Error("double release must fail")
	}
	if err := l.Hold("tx2", "buyer", FromFloat(10000), ""); err == nil {
		t.Error("over-escrow must fail")
	}
}

func TestAuditChain(t *testing.T) {
	l := New()
	_ = l.Open("a", FromFloat(10))
	_ = l.Open("b", 0)
	_ = l.Transfer("a", "b", FromFloat(3), "m1")
	l.Note("mashup delivered")
	if i := l.VerifyChain(); i != -1 {
		t.Fatalf("fresh chain corrupt at %d", i)
	}
	log := l.Log()
	if len(log) != 4 {
		t.Fatalf("log len = %d", len(log))
	}
	// Tamper with an internal copy — the ledger's own chain must still be intact,
	// and a recomputed chain over tampered data must fail.
	l.mu.Lock()
	l.log[2].Amount = FromFloat(999)
	l.mu.Unlock()
	if i := l.VerifyChain(); i != 2 {
		t.Errorf("tamper detected at %d, want 2", i)
	}
}

func TestTotalSupplyConservation(t *testing.T) {
	l := New()
	_ = l.Open("b", FromFloat(100))
	_ = l.Open("s", FromFloat(50))
	_ = l.Open("arbiter", 0)
	before := l.TotalSupply()
	_ = l.Transfer("b", "s", FromFloat(10), "")
	_ = l.Hold("e1", "b", FromFloat(20), "")
	if got := l.TotalSupply(); got != before {
		t.Errorf("supply changed by transfer/hold: %v -> %v", before, got)
	}
	_ = l.Release("e1", "arbiter", FromFloat(5), "")
	if got := l.TotalSupply(); got != before {
		t.Errorf("supply changed by release: %v -> %v", before, got)
	}
}

func TestCurrencyRoundTrip(t *testing.T) {
	f := func(x int32) bool {
		v := float64(x) / 100 // two decimal places
		return FromFloat(v).Float() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if FromFloat(1.5).String() != "1.50" {
		t.Errorf("String = %s", FromFloat(1.5))
	}
}

func TestAccountsSorted(t *testing.T) {
	l := New()
	_ = l.Open("z", 0)
	_ = l.Open("a", 0)
	got := l.Accounts()
	if len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Errorf("accounts = %v", got)
	}
}

// Property: any sequence of valid transfers conserves total supply.
func TestConservationProperty(t *testing.T) {
	f := func(moves []uint8) bool {
		l := New()
		_ = l.Open("a", FromFloat(1000))
		_ = l.Open("b", FromFloat(1000))
		want := l.TotalSupply()
		for i, m := range moves {
			amt := FromFloat(float64(m))
			if i%2 == 0 {
				_ = l.Transfer("a", "b", amt, "")
			} else {
				_ = l.Transfer("b", "a", amt, "")
			}
		}
		return l.TotalSupply() == want && l.VerifyChain() == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
