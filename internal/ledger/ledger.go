// Package ledger implements the transaction-support substrate of the DMMS
// (paper Fig. 2 "Transaction Support" and §4.4 accountability): double-entry
// accounts for buyers, sellers and the arbiter; escrow for ex-post payment
// mechanisms; and a hash-chained, tamper-evident audit log that gives all
// participants a transparent record of what was traded, for how much, and
// how revenue was shared.
package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// Currency is an amount of market incentive: dollars in external markets,
// bonus points in internal markets, barter credits in data-exchange markets
// (paper §3.3). Stored as integer micro-units to avoid float drift.
type Currency int64

// FromFloat converts a float amount to Currency micro-units.
func FromFloat(f float64) Currency { return Currency(f*1e6 + 0.5*signf(f)) }

func signf(f float64) float64 {
	if f < 0 {
		return -1
	}
	return 1
}

// Float converts back to a float amount.
func (c Currency) Float() float64 { return float64(c) / 1e6 }

// String renders the amount with two decimals.
func (c Currency) String() string { return fmt.Sprintf("%.2f", c.Float()) }

// EntryKind classifies audit log entries.
type EntryKind string

// Audit entry kinds.
const (
	KindOpen     EntryKind = "open"
	KindDeposit  EntryKind = "deposit"
	KindWithdraw EntryKind = "withdraw"
	KindTransfer EntryKind = "transfer"
	KindEscrow   EntryKind = "escrow"
	KindRelease  EntryKind = "release"
	KindRefund   EntryKind = "refund"
	KindNote     EntryKind = "note"
)

// AuditEntry is one tamper-evident log record. Hash covers the previous
// entry's hash plus this entry's fields, forming a chain.
type AuditEntry struct {
	Seq      int
	Kind     EntryKind
	From, To string
	Amount   Currency
	Memo     string
	PrevHash string
	Hash     string
}

func (e *AuditEntry) computeHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%d|%s|%s|%s|%d|%s|%s", e.Seq, e.Kind, e.From, e.To, e.Amount, e.Memo, e.PrevHash)
	return hex.EncodeToString(h.Sum(nil))
}

// Ledger is a concurrency-safe double-entry ledger with escrow accounts.
type Ledger struct {
	mu       sync.Mutex
	balances map[string]Currency
	escrow   map[string]Currency // escrow ID -> held amount
	escrowBy map[string]string   // escrow ID -> funding account
	log      []AuditEntry
}

// New creates an empty ledger.
func New() *Ledger {
	return &Ledger{
		balances: map[string]Currency{},
		escrow:   map[string]Currency{},
		escrowBy: map[string]string{},
	}
}

func (l *Ledger) append(kind EntryKind, from, to string, amount Currency, memo string) {
	e := AuditEntry{Seq: len(l.log), Kind: kind, From: from, To: to, Amount: amount, Memo: memo}
	if len(l.log) > 0 {
		e.PrevHash = l.log[len(l.log)-1].Hash
	}
	e.Hash = e.computeHash()
	l.log = append(l.log, e)
}

// Open creates an account with an initial balance. Opening an existing
// account is an error.
func (l *Ledger) Open(account string, initial Currency) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.balances[account]; ok {
		return fmt.Errorf("ledger: account %q already open", account)
	}
	l.balances[account] = initial
	l.append(KindOpen, "", account, initial, "open")
	return nil
}

// Balance returns the available (non-escrowed) balance.
func (l *Ledger) Balance(account string) Currency {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.balances[account]
}

// Exists reports whether an account is open. The engine uses it to fail
// buyer requests fast instead of letting them stall open forever when the
// settlement Hold would bounce.
func (l *Ledger) Exists(account string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.balances[account]
	return ok
}

// Deposit adds funds from outside the market.
func (l *Ledger) Deposit(account string, amount Currency) error {
	if amount < 0 {
		return fmt.Errorf("ledger: negative deposit %s", amount)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.balances[account]; !ok {
		return fmt.Errorf("ledger: account %q not open", account)
	}
	l.balances[account] += amount
	l.append(KindDeposit, "", account, amount, "deposit")
	return nil
}

// Withdraw removes funds from an account, taking them out of this ledger's
// supply. It is the outbound half of a cross-ledger movement: in a federated
// market the coordinator withdraws a settlement's remote seller cuts from the
// home shard and deposits the same micro-unit amounts on the sellers' shards,
// so the sum of every shard's TotalSupply is conserved even though each
// single ledger's supply changes.
func (l *Ledger) Withdraw(account string, amount Currency, memo string) error {
	if amount < 0 {
		return fmt.Errorf("ledger: negative withdrawal %s", amount)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.balances[account]; !ok {
		return fmt.Errorf("ledger: account %q not open", account)
	}
	if l.balances[account] < amount {
		return fmt.Errorf("ledger: %q has %s, cannot withdraw %s", account, l.balances[account], amount)
	}
	l.balances[account] -= amount
	l.append(KindWithdraw, account, "", amount, memo)
	return nil
}

// Transfer moves funds between accounts, failing on insufficient balance.
func (l *Ledger) Transfer(from, to string, amount Currency, memo string) error {
	if amount < 0 {
		return fmt.Errorf("ledger: negative transfer %s", amount)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.balances[from]; !ok {
		return fmt.Errorf("ledger: account %q not open", from)
	}
	if _, ok := l.balances[to]; !ok {
		return fmt.Errorf("ledger: account %q not open", to)
	}
	if l.balances[from] < amount {
		return fmt.Errorf("ledger: %q has %s, cannot transfer %s", from, l.balances[from], amount)
	}
	l.balances[from] -= amount
	l.balances[to] += amount
	l.append(KindTransfer, from, to, amount, memo)
	return nil
}

// Hold moves funds from an account into a named escrow. Ex-post mechanisms
// (paper §3.2.2.2) hold a deposit while the buyer evaluates the data.
func (l *Ledger) Hold(escrowID, from string, amount Currency, memo string) error {
	if amount < 0 {
		return fmt.Errorf("ledger: negative escrow %s", amount)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.balances[from]; !ok {
		return fmt.Errorf("ledger: account %q not open", from)
	}
	if _, ok := l.escrow[escrowID]; ok {
		return fmt.Errorf("ledger: escrow %q already held", escrowID)
	}
	if l.balances[from] < amount {
		return fmt.Errorf("ledger: %q has %s, cannot escrow %s", from, l.balances[from], amount)
	}
	l.balances[from] -= amount
	l.escrow[escrowID] = amount
	l.escrowBy[escrowID] = from
	l.append(KindEscrow, from, escrowID, amount, memo)
	return nil
}

// Release pays `amount` of the escrow to `to` and refunds the remainder to
// the funding account, closing the escrow.
func (l *Ledger) Release(escrowID, to string, amount Currency, memo string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	held, ok := l.escrow[escrowID]
	if !ok {
		return fmt.Errorf("ledger: escrow %q not held", escrowID)
	}
	if amount < 0 || amount > held {
		return fmt.Errorf("ledger: escrow %q holds %s, cannot release %s", escrowID, held, amount)
	}
	if _, ok := l.balances[to]; !ok {
		return fmt.Errorf("ledger: account %q not open", to)
	}
	funder := l.escrowBy[escrowID]
	l.balances[to] += amount
	refund := held - amount
	l.balances[funder] += refund
	delete(l.escrow, escrowID)
	delete(l.escrowBy, escrowID)
	l.append(KindRelease, escrowID, to, amount, memo)
	if refund > 0 {
		l.append(KindRefund, escrowID, funder, refund, "escrow refund")
	}
	return nil
}

// RestoreEscrow re-seeds an escrow entry from a snapshot without debiting
// the funding account. Snapshot balances are captured after the original
// Hold already moved the deposit out of the funder's balance, so the held
// amount exists nowhere else in the checkpoint; restore must recreate the
// escrow directly or the money would be destroyed.
func (l *Ledger) RestoreEscrow(escrowID, from string, amount Currency) error {
	if amount < 0 {
		return fmt.Errorf("ledger: negative escrow %s", amount)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.balances[from]; !ok {
		return fmt.Errorf("ledger: account %q not open", from)
	}
	if _, ok := l.escrow[escrowID]; ok {
		return fmt.Errorf("ledger: escrow %q already held", escrowID)
	}
	l.escrow[escrowID] = amount
	l.escrowBy[escrowID] = from
	l.append(KindEscrow, from, escrowID, amount, "escrow restored")
	return nil
}

// Escrowed returns the amount held in an escrow (0 when absent).
func (l *Ledger) Escrowed(escrowID string) Currency {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.escrow[escrowID]
}

// Note appends a free-form audit record (e.g. "mashup m7 delivered to b1").
func (l *Ledger) Note(memo string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.append(KindNote, "", "", 0, memo)
}

// Log returns a copy of the audit log.
func (l *Ledger) Log() []AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]AuditEntry, len(l.log))
	copy(out, l.log)
	return out
}

// VerifyChain recomputes the hash chain, returning the index of the first
// corrupted entry, or -1 when the log is intact. Buyers/sellers use this to
// audit the arbiter (paper §4.4 Transparency).
func (l *Ledger) VerifyChain() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	prev := ""
	for i := range l.log {
		e := l.log[i]
		if e.PrevHash != prev || e.computeHash() != e.Hash {
			return i
		}
		prev = e.Hash
	}
	return -1
}

// TotalSupply sums all balances plus escrowed funds. Conservation of money —
// the sum never changes except via Open/Deposit — is a market invariant the
// simulator asserts.
func (l *Ledger) TotalSupply() Currency {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total Currency
	for _, b := range l.balances {
		total += b
	}
	for _, e := range l.escrow {
		total += e
	}
	return total
}

// Accounts returns all account names, sorted.
func (l *Ledger) Accounts() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.balances))
	for a := range l.balances {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
