// Command barterhealth demonstrates a barter market (paper §3.3): hospitals
// exchange medical data "to improve patient care and treatments", with data
// credits as the incentive rather than money. It combines the platform's
// governance extensions:
//
//   - contextual integrity (§4.4): PHI flows for healthcare and research
//     purposes only — marketing requests are denied by policy;
//   - a patient data trust (§4.5): patients pool their records and share the
//     trust's earnings;
//   - data insurance (§3.4): the selling hospital insures its release
//     against de-anonymization, priced from its privacy spend;
//   - humans-in-the-loop (§5.4): a diagnosis-code mapping the DoD engine
//     cannot infer is crowdsourced for a bounty.
package main

import (
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/dod"
	"repro/internal/insurance"
	"repro/internal/ledger"
	"repro/internal/license"
	"repro/internal/market"
	"repro/internal/policy"
	"repro/internal/relation"
	"repro/internal/trust"
)

func main() {
	// Barter design: credits, welfare goal, generous allocation.
	design := &market.Design{
		Label: "hospital-barter", Goal: market.GoalWelfare, Type: market.TypeBarter,
		Elicitation: market.ElicitUpfront,
		Mechanism:   market.PostedPrice{P: 25}, // 25 data credits per exchange
		Allocator:   market.ShapleyExact{},
	}
	p, err := core.NewPlatform(core.Options{CustomDesign: design, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}

	// Contextual integrity: PHI norms on every shared dataset.
	eng := policy.NewEngine(policy.Deny)
	for _, ds := range []string{"patients-pool", "stmary/outcomes"} {
		for _, n := range policy.HealthcareDefaults(ds) {
			if err := eng.AddNorm(n); err != nil {
				log.Fatal(err)
			}
		}
	}
	p.Arbiter.Policy = eng

	// A patient data trust pools individual records before they enter the
	// market: individuals are worthless alone, valuable together (§4.5).
	patientTrust, err := trust.New("patients-pool", relation.NewSchema(
		relation.Col("patient_id", relation.KindInt),
		relation.Col("icd_code", relation.KindString),
		relation.Col("recovery_days", relation.KindFloat),
	), 3)
	if err != nil {
		log.Fatal(err)
	}
	for m := 0; m < 5; m++ {
		member := fmt.Sprintf("patient%d", m)
		var rows [][]relation.Value
		for i := 0; i < 40; i++ {
			rows = append(rows, []relation.Value{
				relation.Int(int64(m*1000 + i)),
				relation.String_(fmt.Sprintf("ICD%02d", (m*7+i)%20)),
				relation.Float(float64(5 + (m+i)%30)),
			})
		}
		if err := patientTrust.Join(member, rows); err != nil {
			log.Fatal(err)
		}
	}
	pool, err := patientTrust.Pool()
	if err != nil {
		log.Fatal(err)
	}
	trustSeller := p.Seller("patients-trust")
	if err := trustSeller.Share("patients-pool", pool, license.Terms{Kind: license.NoResale}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("patient trust pooled %d rows from %d members (quorum 3) and listed them no-resale\n",
		pool.NumRows(), len(patientTrust.Members()))

	// St. Mary hospital shares outcome data keyed by a *legacy* diagnosis
	// code the platform cannot map automatically.
	outcomes := relation.New("outcomes", relation.NewSchema(
		relation.Col("legacy_code", relation.KindString),
		relation.Col("treatment", relation.KindString),
		relation.Col("success_rate", relation.KindFloat),
	))
	for i := 0; i < 20; i++ {
		outcomes.MustAppend(
			relation.String_(fmt.Sprintf("LC-%02d", i)),
			relation.String_(fmt.Sprintf("protocol%d", i%6)),
			relation.Float(0.5+float64(i%5)/10),
		)
	}
	stmary := p.Seller("stmary")
	if err := stmary.Share(catalog.DatasetID("stmary/outcomes"), outcomes, license.Terms{Kind: license.NoResale}); err != nil {
		log.Fatal(err)
	}

	// The selling hospital insures its PHI release (§3.4): premium priced
	// from its privacy posture.
	ins, err := insurance.New(p.Arbiter.Ledger, 1.25)
	if err != nil {
		log.Fatal(err)
	}
	_ = p.Arbiter.Ledger.Deposit("stmary", ledger.FromFloat(100))
	pol, err := ins.Underwrite("stmary/outcomes", "stmary",
		insurance.RiskProfile{Epsilon: 1.0, Records: outcomes.NumRows()}, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stmary insured its release: premium %.2f credits for %.0f coverage (risk %.3f)\n",
		pol.Premium, pol.Coverage, pol.Risk)

	// General hospital wants outcomes joined to patient codes — but the
	// join needs legacy_code -> icd_code, which only a human knows.
	general := p.Buyer("general-hospital", 200)
	if _, err := general.Need("icd_code", "recovery_days", "success_rate").
		ForPurpose(string(policy.PurposeHealthcare)).
		ForCoverage(100).
		PayingAt(0.9, 30).
		Submit(); err != nil {
		log.Fatal(err)
	}
	res, err := p.MatchRound()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nround 1: %d transactions (success_rate needs the legacy-code mapping)\n", len(res.Transactions))

	// Humans in the loop (§5.4): post the mapping task with a bounty.
	_ = p.Arbiter.Ledger.Deposit("arbiter", ledger.FromFloat(50))
	board := crowd.NewBoard(p.Arbiter.Ledger, "arbiter")
	for _, w := range []string{"coder1", "coder2", "coder3"} {
		_ = p.Arbiter.Ledger.Open(w, 0)
	}
	task, err := board.Post(crowd.KindMapping, "stmary/outcomes", "legacy_code", "icd_code", 15, 3)
	if err != nil {
		log.Fatal(err)
	}
	mapping := relation.New("m", relation.NewSchema(
		relation.Col("legacy_code", relation.KindString),
		relation.Col("icd_code", relation.KindString),
	))
	for i := 0; i < 20; i++ {
		mapping.MustAppend(relation.String_(fmt.Sprintf("LC-%02d", i)), relation.String_(fmt.Sprintf("ICD%02d", i)))
	}
	_, _ = board.Submit(task.ID, crowd.Answer{Worker: "coder1", Table: mapping})
	_, _ = board.Submit(task.ID, crowd.Answer{Worker: "coder2", Table: mapping.Clone()})
	done, err := board.Submit(task.ID, crowd.Answer{Worker: "coder3", Table: relation.Limit(mapping, 5)})
	if err != nil || !done {
		log.Fatalf("crowd adjudication failed: %v", err)
	}
	accepted, _ := board.Accepted(task.ID)
	fmt.Printf("crowd task %s adjudicated: %s's mapping accepted, bounty paid (balance %.2f credits)\n",
		task.ID, accepted.Worker, p.Arbiter.Ledger.Balance(accepted.Worker).Float())

	// Feed the human-contributed mapping into the DoD engine and re-match.
	tr, err := dod.MappingFromRelation("legacy->icd", accepted.Table, "legacy_code", "icd_code")
	if err != nil {
		log.Fatal(err)
	}
	p.Arbiter.DoD().RegisterTransform("stmary/outcomes", "legacy_code", "icd_code", tr)
	res, err = p.MatchRound()
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Transactions) == 0 {
		log.Fatalf("round 2 failed: %v", res.Unsatisfied)
	}
	tx := res.Transactions[0]
	fmt.Printf("\nround 2: %s delivered (%d rows from %v) for %.0f credits\n",
		tx.Mashup.Name, tx.Mashup.NumRows(), tx.Datasets, tx.Price)

	// The trust's cut flows to patients.
	trustCut := tx.SellerCuts["patients-trust"]
	shares := patientTrust.SplitByRows(trustCut)
	fmt.Printf("patient trust earned %.2f credits; per-member shares: %v\n", trustCut, shares)

	// A marketing data broker is refused by policy.
	broker := p.Buyer("adbroker", 500)
	if _, err := broker.Need("icd_code", "recovery_days").
		ForPurpose(string(policy.PurposeMarketing)).
		ForCoverage(10).PayingAt(0.5, 100).Submit(); err != nil {
		log.Fatal(err)
	}
	res, _ = p.MatchRound()
	denied := 0
	for _, d := range eng.Decisions() {
		if !d.Allowed {
			denied++
		}
	}
	fmt.Printf("\nadbroker (marketing purpose): %d transactions; policy denied %d flows in total\n",
		len(res.Transactions), denied)

	// A de-anonymization event triggers the insurance claim (§7.1).
	paid, err := ins.Claim(pol.ID, 120)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("de-anonymization claim paid %.2f of 120 loss (pool-limited)\n", paid)
	fmt.Println("\n" + p.Summary())
}
