// Command fusionweather demonstrates the data fusion operators (paper §1,
// §5.3): three sellers contribute weather signals for the same days — a city
// feed, a sensor network, and a noisy phone crowd-feed. The arbiter's fusion
// operator aligns them into a non-1NF relation whose cells hold one value
// per source; the buyer can inspect the conflicting signals, resolve them by
// majority vote or by learned source trust (truth discovery), and the market
// pays each source according to its contribution.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/fusion"
	"repro/internal/license"
	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	p, err := core.NewPlatform(core.Options{Design: "posted-baseline", Seed: 13})
	if err != nil {
		log.Fatal(err)
	}

	rels, truth, bad := workload.WeatherSources(3, 90, 31)
	var sources []fusion.Source
	for i, r := range rels {
		owner := fmt.Sprintf("provider%d", i)
		if err := p.Seller(owner).Share(
			catalog.DatasetID(fmt.Sprintf("w%d", i)), r, license.Terms{Kind: license.Open}); err != nil {
			log.Fatal(err)
		}
		sources = append(sources, fusion.Source{Name: r.Name, Rel: r})
	}
	fmt.Printf("3 providers shared weather signals over %d days (one source, %s, is unreliable)\n\n", len(truth), bad)

	// Fusion: align into multi-valued cells.
	fused, err := fusion.Align("day", []string{"temp"}, sources...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fused relation breaks 1NF: %d rows, disagreement level %.2f\n",
		fused.NumRows(), fusion.Disagreement(fused))
	fmt.Println("first rows, all signals visible (buyer can 'make up their own mind'):")
	fmt.Println(relation.Limit(fused, 4))

	// Resolution strategy 1: majority vote.
	maj := fusion.Resolve(fused, fusion.MajorityVote{}, map[string]relation.Kind{"temp": relation.KindFloat})
	// Resolution strategy 2: truth discovery with learned source trust.
	td := fusion.NewTruthDiscovery()
	td.Fit(fused)
	tdr := fusion.Resolve(fused, td, map[string]relation.Kind{"temp": relation.KindFloat})
	// Resolution strategy 3: mean.
	mean := fusion.Resolve(fused, fusion.MeanResolver{}, map[string]relation.Kind{"temp": relation.KindFloat})

	rmse := func(r *relation.Relation) float64 {
		ti := r.Schema.IndexOf("temp")
		di := r.Schema.IndexOf("day")
		var s float64
		for _, row := range r.Rows {
			d := row[di].AsInt()
			err := row[ti].AsFloat() - truth[d]
			s += err * err
		}
		return math.Sqrt(s / float64(r.NumRows()))
	}
	fmt.Println("learned source trust (truth discovery):")
	for src, tr := range td.Trust {
		marker := ""
		if src == bad {
			marker = "  <- the unreliable source"
		}
		fmt.Printf("  %-8s %.3f%s\n", src, tr, marker)
	}
	fmt.Printf("\nresolution quality (RMSE vs ground truth):\n")
	fmt.Printf("  majority vote    %.3f\n", rmse(maj))
	fmt.Printf("  truth discovery  %.3f\n", rmse(tdr))
	fmt.Printf("  mean             %.3f\n", rmse(mean))

	// The market side: a buyer pays for the fused, resolved signal; revenue
	// shares flow to all three providers.
	b := p.Buyer("forecaster", 500)
	if _, err := b.Need("day", "temp").ForCoverage(90).PayingAt(0.9, 120).Submit(); err != nil {
		log.Fatal(err)
	}
	res, err := p.MatchRound()
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Transactions) == 0 {
		log.Fatalf("no sale: %v", res.Unsatisfied)
	}
	tx := res.Transactions[0]
	fmt.Printf("\nforecaster bought %s for $%.2f (posted price); provider cuts: %v\n",
		tx.Mashup.Name, tx.Price, tx.SellerCuts)
	fmt.Println(p.Summary())
}
