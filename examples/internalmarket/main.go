// Command internalmarket demonstrates an internal data market (paper §3.3):
// departments of one organization trade data for bonus points under a
// welfare-maximizing design, bringing down data silos. Analysts across
// departments request cross-silo views; the arbiter combines silo tables by
// their shared entity keys and compensates the owning departments in points.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/license"
	"repro/internal/workload"
)

func main() {
	// Internal design: welfare goal, zero arbiter fee, points not dollars.
	p, err := core.NewPlatform(core.Options{Design: "internal-welfare", Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	silos := workload.EnterpriseSilos(4, 2, 400, 11)
	fmt.Printf("%d departments publish their silos into the internal market:\n", len(silos))
	for _, s := range silos {
		dept := p.Seller(s.Owner)
		ids, err := dept.ShareBulk(s.Datasets, license.Terms{Kind: license.Open})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s shared %v\n", s.Owner, ids)
	}

	// Analysts ask for cross-silo combinations; bonus-point budgets fund
	// their requests.
	analysts := []struct {
		name string
		cols []string
	}{
		{"analyst-growth", []string{"entity_id", "metric_0_0", "metric_1_0"}},
		{"analyst-risk", []string{"entity_id", "metric_2_1", "flag_3_0"}},
		{"analyst-ops", []string{"entity_id", "flag_0_1", "metric_3_1"}},
	}
	for _, an := range analysts {
		b := p.Buyer(an.name, 500)
		if _, err := b.Need(an.cols...).
			ForCoverage(100).
			PayingAt(0.75, 40). // 40 bonus points for a useful view
			Submit(); err != nil {
			log.Fatal(err)
		}
	}

	res, err := p.MatchRound()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmatching round: %d cross-silo views delivered, %d unmet\n",
		len(res.Transactions), len(res.Unsatisfied))
	for _, tx := range res.Transactions {
		fmt.Printf("  %s -> %s: %d rows from %v (completeness %.2f, %0.f points)\n",
			tx.ID, tx.Buyer, tx.Mashup.NumRows(), tx.Datasets, tx.Satisfaction, tx.Price)
	}

	// Departments' incentive: bonus points earned by sharing.
	fmt.Println("\nbonus points earned by departments:")
	var names []string
	for _, s := range silos {
		names = append(names, s.Owner)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-8s %6.1f points\n", n, p.Seller(n).Earnings())
	}

	// The silo-breaking effect: which datasets were combined across
	// department boundaries.
	cross := 0
	for _, tx := range res.Transactions {
		owners := map[string]bool{}
		for _, ds := range tx.Datasets {
			for _, s := range silos {
				for _, d := range s.Datasets {
					if s.Owner+"/"+d.Name == ds {
						owners[s.Owner] = true
					}
				}
			}
		}
		if len(owners) > 1 {
			cross++
		}
	}
	fmt.Printf("\n%d of %d delivered views combined data across silo boundaries\n",
		cross, len(res.Transactions))
	fmt.Println(p.Summary())
}
