// Command quickstart walks the paper's §1 worked example end to end:
//
//   - Seller 1 shares s1 = ⟨a, b, c⟩.
//   - Seller 2 shares s2 = ⟨a, b′, f(d)⟩ and, during a negotiation round,
//     explains how to invert f (Fahrenheit back to Celsius).
//   - Buyer b1 wants features ⟨a, b, d, e⟩ and pays $100 only if a
//     classifier trained on the mashup reaches 80% accuracy ($150 at 90%).
//   - Attribute e exists nowhere, so the arbiter publishes a demand signal
//     and opportunistic Seller 3 fetches it for profit (§7.1).
//   - The arbiter joins, transforms, transacts, and splits the revenue.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/license"
	"repro/internal/mltask"
	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	p, err := core.NewPlatform(core.Options{Design: "posted-baseline", Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ex := workload.NewPaperExample(600, 42)

	// Sellers 1 and 2 share their data.
	seller1 := p.Seller("seller1")
	if err := seller1.Share("s1", ex.S1, license.Terms{Kind: license.Open}); err != nil {
		log.Fatal(err)
	}
	seller2 := p.Seller("seller2")
	if err := seller2.Share("s2", ex.S2, license.Terms{Kind: license.Open}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sellers shared s1=⟨a,b,c⟩ and s2=⟨a,b',f(d)⟩")

	// The buyer owns the labels; needs a,b,d,e to train the classifier.
	b1 := p.Buyer("b1", 1000)
	reqID, err := b1.Need("a", "b", "d", "e").
		ForClassifier(mltask.ModelLogistic, []string{"b", "d", "e"}, "label", 7).
		Owning(ex.Truth).
		PayingAt(0.80, 100).
		PayingAt(0.90, 150).
		Submit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buyer b1 filed %s: wants ⟨a,b,d,e⟩, $100 at 80%% accuracy, $150 at 90%%\n", reqID)

	// Round 1: d (celsius) and e are unavailable -> no trade.
	res, err := p.MatchRound()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round 1: %d transactions, unmet demand: %v\n", len(res.Transactions), p.Arbiter.DemandSignals())

	// Negotiation round: seller2 explains f(d) via example pairs
	// (Fahrenheit, Celsius) — the arbiter infers the affine inverse.
	inv, r2, err := dod.InferAffine("fahrenheit->celsius",
		[]float64{32, 50, 212}, []float64{0, 10, 100})
	if err != nil {
		log.Fatal(err)
	}
	p.Arbiter.DoD().RegisterTransform("s2", "f_of_temp", "d", inv)
	fmt.Printf("negotiation: seller2 revealed f; arbiter inferred inverse (R²=%.4f)\n", r2)

	// Opportunistic Seller 3 mines the demand board and fetches e.
	p.Seller("seller3")
	id, err := p.Arbiter.AskOpportunisticSeller("seller3", func(col string) *relation.Relation {
		if col != "e" {
			return nil
		}
		return ex.S3
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opportunistic seller3 supplied %s covering attribute e\n", id)

	// Round 2: the arbiter builds mashup(s1+s2+s3), trains the buyer's
	// classifier, and transacts.
	res, err = p.MatchRound()
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Transactions) == 0 {
		log.Fatalf("no transaction; open requests: %v", res.Unsatisfied)
	}
	tx := res.Transactions[0]
	fmt.Printf("\nround 2: transaction %s\n", tx.ID)
	fmt.Printf("  mashup      %s (%d rows) from %v\n", tx.Mashup.Name, tx.Mashup.NumRows(), tx.Datasets)
	fmt.Printf("  accuracy    %.3f\n", tx.Satisfaction)
	fmt.Printf("  price       $%.2f\n", tx.Price)
	fmt.Printf("  arbiter cut $%.2f\n", tx.ArbiterCut)
	for s, cut := range tx.SellerCuts {
		fmt.Printf("  %-10s  $%.2f\n", s, cut)
	}
	fmt.Println("\nbuild plan (transparency, §4.4):")
	for _, step := range tx.Plan {
		fmt.Println("   ", step)
	}
	fmt.Println("\nseller accountability (seller1's view):")
	for _, rec := range seller1.Accountability() {
		fmt.Printf("  %s: my data %v in %s sold to %s for $%.2f, my cut $%.2f\n",
			rec.TxID, rec.MyData, rec.Mashup, rec.Buyer, rec.Price, rec.MyCut)
	}
	if i := p.Arbiter.Ledger.VerifyChain(); i != -1 {
		log.Fatalf("audit chain corrupt at %d", i)
	}
	fmt.Println("\naudit chain verified;", p.Summary())
}
