// Command externalmarket demonstrates an external, revenue-maximizing data
// market across organizations (paper §3.3): a seller with PII obligations
// anonymizes before sharing (§4.2), a dataset sells under an exclusive
// license with an exclusivity tax (§4.4), competing buyers are priced by a
// Vickrey auction, and an arbitrageur buys, transforms and resells data for
// profit (§7.1).
package main

import (
	"fmt"
	"log"

	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/license"
	"repro/internal/market"
	"repro/internal/mltask"
	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	design := &market.Design{
		Label: "external-vickrey", Goal: market.GoalRevenue, Type: market.TypeExternal,
		Elicitation: market.ElicitUpfront,
		Mechanism:   market.SecondPrice{Reserve: 20},
		Allocator:   market.ShapleyExact{},
		ArbiterFee:  0.05,
	}
	p, err := core.NewPlatform(core.Options{CustomDesign: design, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	// An HR analytics firm sells workforce data — but it contains PII, so
	// the SMP anonymization pipeline runs first: drop names, add
	// differential-privacy noise to salary, k-anonymize age/zip.
	hr := workload.PIITable(3000, 21)
	hrSeller := p.Seller("hranalytics")
	err = hrSeller.Share("workforce", hr, license.Terms{Kind: license.Open},
		hrSeller.DropPII("name"),
		hrSeller.Laplace("workforce", "salary", 2.0, 1000),
		hrSeller.KAnonymize("age", 10, []string{"age", "zip"}, 5),
	)
	if err != nil {
		log.Fatal(err)
	}
	shared, _ := p.Arbiter.Catalog.Get("workforce")
	fmt.Printf("hranalytics shared 'workforce': %d of %d rows survive anonymization (ε spent: %.1f)\n",
		shared.NumRows(), hr.NumRows(), hrSeller.Budget.Spent("workforce"))

	// A hedge fund sells a premium signal under an exclusive license.
	signal := relation.New("alpha_signal", relation.NewSchema(
		relation.Col("zip", relation.KindString),
		relation.Col("local_index", relation.KindFloat),
	))
	for i := 0; i < 30; i++ {
		signal.MustAppend(relation.String_(fmt.Sprintf("606%02d", i)), relation.Float(float64(100+i)))
	}
	fund := p.Seller("quantfund")
	if err := fund.Share("alpha", signal, license.Terms{Kind: license.Exclusive, ExclusivityTaxRate: 0.02}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("quantfund shared 'alpha' under an exclusive license (2% per-period tax)")

	// Two insurers compete for the attrition-prediction mashup
	// (workforce ⋈ alpha on zip). Exclusive license -> single-unit Vickrey.
	for _, b := range []struct {
		name      string
		bidAt80   float64
		trueValue float64
	}{
		{"insurerA", 400, 400},
		{"insurerB", 250, 250},
	} {
		buyer := p.Buyer(b.name, 2000)
		if _, err := buyer.Need("age", "salary", "local_index", "quit").
			ForClassifier(mltask.ModelLogistic, []string{"age", "salary", "local_index"}, "quit", 9).
			PayingAt(0.70, b.bidAt80).
			TrueValueAt(0.70, b.trueValue).
			Submit(); err != nil {
			log.Fatal(err)
		}
	}
	res, err := p.MatchRound()
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Transactions) == 0 {
		log.Fatalf("no sale; unsatisfied: %v", res.Unsatisfied)
	}
	tx := res.Transactions[0]
	fmt.Printf("\nauction: %s wins at the second price $%.2f (accuracy %.3f)\n",
		tx.Buyer, tx.Price, tx.Satisfaction)
	fmt.Printf("revenue split: arbiter $%.2f", tx.ArbiterCut)
	for s, c := range tx.SellerCuts {
		fmt.Printf(", %s $%.2f", s, c)
	}
	fmt.Println()
	fmt.Printf("exclusivity taxes due this period: %v\n", p.Arbiter.Licenses.PeriodTaxes())

	// Arbitrage (§7.1): a data firm buys the open workforce data cheap,
	// enriches it with a quality score, and resells the derivative.
	arb := p.Buyer("arbitrageur", 1000)
	if _, err := arb.Need("age", "salary", "quit").ForCoverage(1000).PayingAt(0.9, 60).Submit(); err != nil {
		log.Fatal(err)
	}
	res, err = p.MatchRound()
	if err != nil || len(res.Transactions) == 0 {
		log.Fatalf("arbitrageur purchase failed: %v %v", err, res)
	}
	bought := res.Transactions[0]
	if !p.Arbiter.Licenses.MayResell("workforce", "arbitrageur") {
		log.Fatal("open license must permit resale")
	}
	enriched := relation.AddColumn(bought.Mashup, relation.Col("risk_score", relation.KindFloat),
		func(row []relation.Value, s relation.Schema) relation.Value {
			age := row[s.IndexOf("age")].AsFloat()
			sal := row[s.IndexOf("salary")].AsFloat()
			return relation.Float(sal/1000 - age)
		})
	enriched.Name = "workforce_scored"
	arbSeller := p.Seller("arbitrageur")
	if err := arbSeller.Share("workforce_scored", enriched, license.Terms{Kind: license.Open}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narbitrageur bought the open data for $%.2f, enriched it with risk_score, relisted it\n", bought.Price)

	// Two desks compete for the derivative; the second price now reflects
	// real demand and the arbitrageur's transformation earns its margin.
	riskBuyer := p.Buyer("riskdesk", 1000)
	if _, err := riskBuyer.Need("age", "salary", "risk_score").ForCoverage(1000).PayingAt(0.9, 150).Submit(); err != nil {
		log.Fatal(err)
	}
	creditBuyer := p.Buyer("creditdesk", 1000)
	if _, err := creditBuyer.Need("age", "salary", "risk_score").ForCoverage(1000).PayingAt(0.9, 120).Submit(); err != nil {
		log.Fatal(err)
	}
	res, err = p.MatchRound()
	if err != nil || len(res.Transactions) == 0 {
		log.Fatalf("resale failed: %v", res)
	}
	var resaleCut float64
	for _, rtx := range res.Transactions {
		fmt.Printf("%s bought the derivative for $%.2f\n", rtx.Buyer, rtx.Price)
		resaleCut += rtx.SellerCuts["arbitrageur"]
	}
	fmt.Printf("arbitrageur resale earnings $%.2f against $%.2f cost (profit $%.2f)\n",
		resaleCut, bought.Price, resaleCut-bought.Price)
	fmt.Printf("\nfinal balances: %s=%.2f quantfund=%.2f hranalytics=%.2f arbitrageur=%.2f\n",
		arbiter.ArbiterAccount,
		p.Arbiter.Ledger.Balance(arbiter.ArbiterAccount).Float(),
		fund.Earnings(), hrSeller.Earnings(), arbSeller.Earnings())
	if p.Arbiter.Ledger.VerifyChain() != -1 {
		log.Fatal("audit chain corrupt")
	}
	fmt.Println("audit chain verified;", p.Summary())
}
