// Package repro's root benchmarks regenerate every experiment in DESIGN.md's
// per-experiment index (E1–E12): run
//
//	go test -bench=. -benchmem
//
// Each BenchmarkE* wraps the corresponding experiments.E* harness (the same
// code cmd/dmbench prints tables from), so `-bench` measures the cost of
// regenerating each table. The Ablation* benchmarks cover the design choices
// DESIGN.md calls out: hash vs nested-loop join, LSH vs exhaustive column
// matching, and Monte-Carlo Shapley sample counts.
package repro

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/index"
	"repro/internal/license"
	"repro/internal/market"
	"repro/internal/profile"
	"repro/internal/relation"
	"repro/internal/sim"
	"repro/internal/wal"
	"repro/internal/workload"
	"repro/internal/wtp"
)

func BenchmarkE1EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E1EndToEnd(300, 42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2SimDesigns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E2SimDesigns(30, 42)
	}
}

func BenchmarkE3Coalitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E3Coalitions(30, 42)
	}
}

func BenchmarkE4MechanismScaling(b *testing.B) {
	// The E4 table embeds its own timing loops; the bench exercises the
	// mechanisms directly per size instead.
	for _, n := range []int{10, 100, 1000, 10000} {
		bids := make([]market.Bid, n)
		for i := range bids {
			bids[i] = market.Bid{Buyer: fmt.Sprintf("b%d", i), Offer: float64(50 + i%100)}
		}
		for _, mech := range []market.Mechanism{market.PostedPrice{P: 100}, market.SecondPrice{}, market.RSOP{Seed: 1}} {
			b.Run(fmt.Sprintf("%s/n=%d", mech.Name(), n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mech.Run(bids, market.SupplyUnlimited)
				}
			})
		}
	}
}

func BenchmarkE5Shapley(b *testing.B) {
	mkGame := func(n int) ([]string, market.ValueFunc) {
		players := make([]string, n)
		for i := range players {
			players[i] = fmt.Sprintf("d%02d", i)
		}
		v := func(s map[string]bool) float64 {
			return float64(len(s)) + 0.1*float64(len(s)*len(s))
		}
		return players, v
	}
	for _, n := range []int{8, 12, 16} {
		players, v := mkGame(n)
		b.Run(fmt.Sprintf("exact/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				market.ShapleyExact{}.Allocate(players, v)
			}
		})
	}
	for _, n := range []int{8, 16, 64, 256} {
		players, v := mkGame(n)
		b.Run(fmt.Sprintf("mc200/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				market.ShapleyMonteCarlo{Samples: 200, Seed: 1}.Allocate(players, v)
			}
		})
	}
}

func BenchmarkE6MashupBuilder(b *testing.B) {
	for _, n := range []int{10, 50, 100} {
		tables := workload.LakeTables(n, 100, 42)
		profs := make([]*profile.DatasetProfile, len(tables))
		for i, r := range tables {
			profs[i] = profile.Profile(r.Name, r)
		}
		b.Run(fmt.Sprintf("profile/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				profile.Profile(tables[i%len(tables)].Name, tables[i%len(tables)])
			}
		})
		b.Run(fmt.Sprintf("index/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				index.Build(index.DefaultConfig(), profs)
			}
		})
	}
}

func BenchmarkE7PrivacyValue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E7PrivacyValue(42)
	}
}

func BenchmarkE8ThinMarket(b *testing.B) {
	cfg := sim.ThinConfig{
		Universe: 24, Sellers: 14, AttrsPerSeller: 8,
		Buyers: 200, AttrsPerBuyer: 6, Seed: 42,
	}
	for i := 0; i < b.N; i++ {
		sim.ThinSweep(cfg, []int{1, 2, 3, 4})
	}
}

func BenchmarkE9Arbitrage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E9Arbitrage(42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10Negotiation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E10Negotiation(42); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (DESIGN.md "design choices called out") -------------

func mkJoinInputs(n int) (*relation.Relation, *relation.Relation) {
	l := relation.New("l", relation.NewSchema(
		relation.Col("k", relation.KindInt), relation.Col("x", relation.KindFloat)))
	r := relation.New("r", relation.NewSchema(
		relation.Col("k", relation.KindInt), relation.Col("y", relation.KindFloat)))
	for i := 0; i < n; i++ {
		l.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)))
		r.MustAppend(relation.Int(int64(i%n)), relation.Float(float64(-i)))
	}
	return l, r
}

func BenchmarkAblationHashJoin(b *testing.B) {
	for _, n := range []int{100, 1000, 5000} {
		l, r := mkJoinInputs(n)
		b.Run(fmt.Sprintf("hash/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := relation.HashJoin(l, r, relation.JoinPair{Left: "k", Right: "k"}); err != nil {
					b.Fatal(err)
				}
			}
		})
		if n <= 1000 {
			b.Run(fmt.Sprintf("nestedloop/n=%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := relation.NestedLoopJoin(l, r, relation.JoinPair{Left: "k", Right: "k"}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkAblationLSH(b *testing.B) {
	tables := workload.LakeTables(100, 100, 42)
	profs := make([]*profile.DatasetProfile, len(tables))
	for i, r := range tables {
		profs[i] = profile.Profile(r.Name, r)
	}
	b.Run("lsh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			index.Build(index.DefaultConfig(), profs)
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		cfg := index.DefaultConfig()
		cfg.Exhaustive = true
		for i := 0; i < b.N; i++ {
			index.Build(cfg, profs)
		}
	})
}

func BenchmarkAblationShapleySamples(b *testing.B) {
	players := make([]string, 12)
	for i := range players {
		players[i] = fmt.Sprintf("d%02d", i)
	}
	v := func(s map[string]bool) float64 { return float64(len(s)) }
	for _, samples := range []int{50, 200, 1000} {
		b.Run(fmt.Sprintf("samples=%d", samples), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				market.ShapleyMonteCarlo{Samples: samples, Seed: 1}.Allocate(players, v)
			}
		})
	}
}

// BenchmarkRevenueSplit is the settlement-path allocator comparison behind
// the adaptive-Shapley PR: exact enumeration vs the adaptive allocator on
// the same mixed-synergy games (additive weights plus adjacent-pair
// bonuses, whose true Shapley split is known in closed form by linearity).
// Each variant reports its L1 distance from the analytic truth alongside
// ns/op — the claim is that from 16 sources up, adaptive is >=10x faster
// than exact while keeping L1 <= 0.05, and it keeps pricing at 25 sources
// where exact enumeration is infeasible.
func BenchmarkRevenueSplit(b *testing.B) {
	const bonus = 4.0
	mkMixed := func(n int) ([]string, market.ValueFunc, map[string]float64) {
		players := make([]string, n)
		w := map[string]float64{}
		for i := range players {
			players[i] = fmt.Sprintf("d%02d", i)
			w[players[i]] = float64(i + 1)
		}
		v := func(s map[string]bool) float64 {
			total := 0.0
			for p := range s {
				total += w[p]
			}
			for i := 0; i+1 < n; i++ {
				if s[players[i]] && s[players[i+1]] {
					total += bonus
				}
			}
			return total
		}
		// True split by linearity: own weight plus half of each incident
		// pair bonus, normalized to fractions of the grand coalition.
		truth := map[string]float64{}
		grand := 0.0
		for i, p := range players {
			t := w[p]
			if i > 0 {
				t += bonus / 2
			}
			if i+1 < n {
				t += bonus / 2
			}
			truth[p] = t
			grand += t
		}
		for p := range truth {
			truth[p] /= grand
		}
		return players, v, truth
	}
	l1 := func(got, want map[string]float64) float64 {
		d := 0.0
		for p, tw := range want {
			d += math.Abs(got[p] - tw)
		}
		return d
	}
	for _, n := range []int{2, 4, 8, 12, 16, 20} {
		players, v, truth := mkMixed(n)
		b.Run(fmt.Sprintf("exact/n=%d", n), func(b *testing.B) {
			var split map[string]float64
			for i := 0; i < b.N; i++ {
				split = exactShapleySplit(players, v)
			}
			b.ReportMetric(l1(split, truth), "l1-error")
		})
		b.Run(fmt.Sprintf("adaptive/n=%d", n), func(b *testing.B) {
			alloc := market.AdaptiveShapley{Seed: 42}
			var split map[string]float64
			for i := 0; i < b.N; i++ {
				split = market.AllocateWith(alloc, players, v, market.AllocContext{})
			}
			b.ReportMetric(l1(split, truth), "l1-error")
		})
	}
	// Beyond the exact allocator's feasible bound (2^25 coalitions): only
	// the sampled path can price this settlement at all.
	players, v, truth := mkMixed(25)
	b.Run("adaptive/n=25", func(b *testing.B) {
		alloc := market.AdaptiveShapley{Seed: 42}
		var split map[string]float64
		for i := 0; i < b.N; i++ {
			split = market.AllocateWith(alloc, players, v, market.AllocContext{})
		}
		b.ReportMetric(l1(split, truth), "l1-error")
	})
}

// exactShapleySplit times the pure 2^n enumeration (ShapleyExact itself now
// escalates wide games, so the bench pins the exact path explicitly by
// staying under its feasibility bound).
func exactShapleySplit(players []string, v market.ValueFunc) map[string]float64 {
	return market.ShapleyExact{}.Allocate(players, v)
}

// BenchmarkEngineThroughput measures sustained matches/sec through the
// concurrent market engine: parallel submitters push WTP-task requests into
// the sharded intake (threshold-kicked epochs clear them in the background),
// then final epochs drain the tail. The custom matches/sec metric is the
// number the ROADMAP's scaling PRs track.
//
// The coverage variant is the cheap-build baseline; the transform-heavy
// variants make the Mashup Builder the dominant epoch cost (many distinct
// want groups over transform-materialized columns, with fresh shares
// continuously invalidating the candidate cache) and contrast synchronous
// in-round builds against the async DoD builder pool, whose build stage
// overlaps the per-group beam searches (build-ms/epoch is accounted to the
// workers either way; with the pool the epoch only waits for the slowest
// group instead of the sum).
func BenchmarkEngineThroughput(b *testing.B) {
	b.Run("coverage", benchCoverageThroughput)
	b.Run("transform-heavy/sync", func(b *testing.B) { benchTransformHeavy(b, 0, false) })
	b.Run("transform-heavy/workers=4", func(b *testing.B) { benchTransformHeavy(b, 4, false) })
	b.Run("transform-join/sync", func(b *testing.B) { benchTransformHeavy(b, 0, true) })
	b.Run("transform-join/workers=4", func(b *testing.B) { benchTransformHeavy(b, 4, true) })
	b.Run("federation/shards=1", func(b *testing.B) { benchFederationThroughput(b, 1) })
	b.Run("federation/shards=2", func(b *testing.B) { benchFederationThroughput(b, 2) })
	b.Run("federation/shards=4", func(b *testing.B) { benchFederationThroughput(b, 4) })
}

func benchCoverageThroughput(b *testing.B) {
	const buyers = 16
	p, err := core.NewPlatform(core.Options{Design: "posted-baseline"})
	if err != nil {
		b.Fatal(err)
	}
	reg := benchRegistry()
	eng := engine.New(p, engine.Config{Shards: 8, BatchThreshold: 256, Metrics: reg})
	defer eng.Stop()
	for i := 0; i < buyers; i++ {
		eng.SubmitRegister(fmt.Sprintf("b%02d", i), 1e9)
	}
	for s := 0; s < 4; s++ {
		id := fmt.Sprintf("s%d/d", s)
		r := relation.New(id, relation.NewSchema(
			relation.Col("a", relation.KindInt), relation.Col("b", relation.KindFloat)))
		for i := 0; i < 50; i++ {
			r.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)))
		}
		eng.SubmitShare(fmt.Sprintf("s%d", s), catalog.DatasetID(id), r,
			wtp.DatasetMeta{Dataset: id, HasProvenance: true}, license.Terms{Kind: license.Open})
	}
	eng.TriggerEpoch()
	eng.Start()

	var worker atomic.Int64
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		buyer := fmt.Sprintf("b%02d", worker.Add(1)%buyers)
		for pb.Next() {
			eng.SubmitRequest(
				dod.Want{Columns: []string{"a", "b"}},
				&wtp.Function{
					Buyer: buyer,
					Task:  wtp.CoverageTask{Columns: []string{"a", "b"}, WantRows: 1},
					Curve: []wtp.CurvePoint{{MinSatisfaction: 0.5, Price: 150}},
				})
		}
	})
	// Drain: epochs until every request has cleared.
	for eng.Stats().Matched < uint64(b.N) {
		eng.TriggerEpoch()
	}
	elapsed := time.Since(start)
	b.StopTimer()
	st := eng.Stats()
	if st.Matched != uint64(b.N) {
		b.Fatalf("matched %d of %d requests", st.Matched, b.N)
	}
	if !eng.Settlements().Conserved() {
		b.Fatal("settlement conservation violated")
	}
	b.ReportMetric(float64(st.Matched)/elapsed.Seconds(), "matches/sec")
	b.ReportMetric(float64(st.Epochs), "epochs")
	recordBenchJSON(b, reg, float64(st.Matched)/elapsed.Seconds(), st.Epochs, 0)
}

// benchTransformHeavy drives the registered-transform-heavy workload: 6
// distinct want groups, each satisfied only through columns that transform
// registration materialized, while every 64th submission shares a fresh
// dataset — bumping the catalog version and forcing all groups to rebuild.
//
// With joinWants set, each base carries a distinct w<s> column, transforms
// are partitioned across bases (t<g> lives only on base g%bases), and every
// want spans a transform column and another base's w column — so no single
// dataset covers it and every build materializes cross-dataset joins. This
// variant is what makes the Mashup Builder's join pipeline (streaming
// lineage-carrying joins, sub-join memo) the dominant build-stage cost.
func benchTransformHeavy(b *testing.B, workers int, joinWants bool) {
	const (
		buyers = 16
		groups = 6
		bases  = 4
	)
	p, err := core.NewPlatform(core.Options{Design: "posted-baseline"})
	if err != nil {
		b.Fatal(err)
	}
	reg := benchRegistry()
	eng := engine.New(p, engine.Config{Shards: 8, BatchThreshold: 128, DoDWorkers: workers, Metrics: reg})
	defer eng.Stop()
	for i := 0; i < buyers; i++ {
		if _, err := eng.SubmitRegister(fmt.Sprintf("b%02d", i), 1e9); err != nil {
			b.Fatal(err)
		}
	}
	mkRel := func(id string, rows int) *relation.Relation {
		r := relation.New(id, relation.NewSchema(
			relation.Col("a", relation.KindInt), relation.Col("c", relation.KindFloat)))
		for i := 0; i < rows; i++ {
			r.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)*0.5))
		}
		return r
	}
	mkBase := func(id string, s, rows int) *relation.Relation {
		r := relation.New(id, relation.NewSchema(
			relation.Col("a", relation.KindInt), relation.Col("c", relation.KindFloat),
			relation.Col(fmt.Sprintf("w%d", s), relation.KindFloat)))
		for i := 0; i < rows; i++ {
			r.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)*0.5),
				relation.Float(float64(i)+float64(s)))
		}
		return r
	}
	baseRows := 60
	if joinWants {
		baseRows = 400
	}
	for s := 0; s < bases; s++ {
		id := fmt.Sprintf("s%d/base", s)
		if _, err := eng.SubmitShare(fmt.Sprintf("s%d", s), catalog.DatasetID(id), mkBase(id, s, baseRows),
			wtp.DatasetMeta{Dataset: id, HasProvenance: true}, license.Terms{Kind: license.Open}); err != nil {
			b.Fatal(err)
		}
	}
	eng.TriggerEpoch()
	// Negotiation learned one transform per (dataset, group): each
	// registration materializes the derived column and re-indexes, so every
	// group's builds search a transform-widened join graph. The join variant
	// partitions the transforms instead: t<g> exists only on base g%bases,
	// forcing wants that pair t<g> with another base's w column to join.
	for s := 0; s < bases; s++ {
		for g := 0; g < groups; g++ {
			if joinWants && g%bases != s {
				continue
			}
			g := g
			p.Arbiter.DoD().RegisterTransform(
				catalog.DatasetID(fmt.Sprintf("s%d/base", s)), "c", fmt.Sprintf("t%d", g),
				&dod.Transform{
					Name: fmt.Sprintf("aff%d", g),
					Kind: relation.KindFloat,
					Fn: func(v relation.Value) relation.Value {
						if v.IsNull() || !v.IsNumeric() {
							return relation.Null()
						}
						return relation.Float(v.AsFloat()*float64(g+2) + 1)
					},
				})
		}
	}
	eng.Start()

	var submitted, shareSeq atomic.Int64
	var worker atomic.Int64
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		buyer := fmt.Sprintf("b%02d", worker.Add(1)%buyers)
		for pb.Next() {
			n := submitted.Add(1)
			if n%64 == 0 {
				// Fresh supply: joins into the graph and invalidates every
				// cached candidate set.
				id := fmt.Sprintf("x%d/d", shareSeq.Add(1))
				_, _ = eng.SubmitShare("s0", catalog.DatasetID(id), mkRel(id, 30),
					wtp.DatasetMeta{Dataset: id, HasProvenance: true}, license.Terms{Kind: license.Open})
			}
			g := int(n) % groups
			cols := []string{"a", fmt.Sprintf("t%d", g)}
			if joinWants {
				// Pair the transform column with a w column owned by a
				// different base, so only a join can cover the want.
				cols = append(cols, fmt.Sprintf("w%d", (g+1)%bases))
			}
			_, _ = eng.SubmitRequest(
				dod.Want{Columns: cols},
				&wtp.Function{
					Buyer: buyer,
					Task:  wtp.CoverageTask{Columns: cols, WantRows: 1},
					Curve: []wtp.CurvePoint{{MinSatisfaction: 0.5, Price: 150}},
				})
		}
	})
	for eng.Stats().Matched < uint64(b.N) {
		eng.TriggerEpoch()
	}
	elapsed := time.Since(start)
	b.StopTimer()
	st := eng.Stats()
	if st.Matched != uint64(b.N) {
		b.Fatalf("matched %d of %d requests", st.Matched, b.N)
	}
	if !eng.Settlements().Conserved() {
		b.Fatal("settlement conservation violated")
	}
	b.ReportMetric(float64(st.Matched)/elapsed.Seconds(), "matches/sec")
	b.ReportMetric(float64(st.Epochs), "epochs")
	buildMS := 0.0
	if st.Epochs > 0 {
		buildMS = st.BuildMillis / float64(st.Epochs)
		b.ReportMetric(buildMS, "build-ms/epoch")
	}
	b.ReportMetric(float64(st.CacheHits), "cache-hits")
	recordBenchJSON(b, reg, float64(st.Matched)/elapsed.Seconds(), st.Epochs, buildMS)
}

// fedBenchName brute-forces a participant name hashing to the given home
// shard, so the scaling workload can pin each buyer/seller group to a shard.
func fedBenchName(prefix string, shard, shards int) string {
	for i := 0; ; i++ {
		n := fmt.Sprintf("%s%d", prefix, i)
		if federation.HomeOf(n, shards) == shard {
			return n
		}
	}
}

// benchFederationThroughput is the shard-scaling variant of the transform-join
// workload, driven through a federated market (internal/federation). The
// market is FIXED — four districts, each two join-half bases plus partitioned
// transforms and its own buyer group — and sharding partitions it: each
// district's sellers and buyers hash-pin to district%shards. Every want
// resolves on its home shard, so the variant isolates what federation buys:
// per-shard epochs run concurrently AND each shard's matching rounds search a
// catalog (join graph, transform set, open-request book) 1/N the size of the
// single-arbiter market. Compare shards=1/2/4 at a pinned -benchtime Nx.
func benchFederationThroughput(b *testing.B, shardsN int) {
	const (
		districts   = 4
		bases       = 3 // per district
		groups      = 6 // want groups per district
		buyersPerD  = 4
		rowsPerBase = 600
	)
	reg := benchRegistry()
	m, err := federation.Open(federation.Config{
		Shards:   shardsN,
		Engine:   engine.Config{Shards: 8, BatchThreshold: 128},
		Platform: core.Options{Design: "posted-baseline"},
		Metrics:  reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Stop()

	// District columns are disjoint (w<d>_<bs>, t<d>_<g>), so a district's
	// wants never span shards — but with fewer shards than districts, one
	// arbiter carries several districts' worth of catalog and open requests.
	mkBase := func(id string, d, bs int) *relation.Relation {
		r := relation.New(id, relation.NewSchema(
			relation.Col("a", relation.KindInt), relation.Col("c", relation.KindFloat),
			relation.Col(fmt.Sprintf("w%d_%d", d, bs), relation.KindFloat)))
		for i := 0; i < rowsPerBase; i++ {
			r.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)*0.5),
				relation.Float(float64(i)+float64(bs)))
		}
		return r
	}
	buyers := make([][]string, districts)
	for d := 0; d < districts; d++ {
		home := d % shardsN
		for i := 0; i < buyersPerD; i++ {
			name := fedBenchName(fmt.Sprintf("fb%d-%d-", d, i), home, shardsN)
			if _, err := m.SubmitRegister(name, 1e9); err != nil {
				b.Fatal(err)
			}
			buyers[d] = append(buyers[d], name)
		}
		for bs := 0; bs < bases; bs++ {
			seller := fedBenchName(fmt.Sprintf("fs%d-%d-", d, bs), home, shardsN)
			id := seller + "/base"
			if _, err := m.SubmitShare(seller, catalog.DatasetID(id), mkBase(id, d, bs),
				wtp.DatasetMeta{Dataset: id, HasProvenance: true}, license.Terms{Kind: license.Open}); err != nil {
				b.Fatal(err)
			}
		}
	}
	m.TriggerEpoch()
	// Transforms are partitioned exactly like transform-join: t<d>_<g> lives
	// only on district d's base g%bases, so a want pairing it with the other
	// base's w column must join across datasets.
	for d := 0; d < districts; d++ {
		sh := m.Shards()[d%shardsN]
		for bs := 0; bs < bases; bs++ {
			seller := fedBenchName(fmt.Sprintf("fs%d-%d-", d, bs), d%shardsN, shardsN)
			for g := 0; g < groups; g++ {
				if g%bases != bs {
					continue
				}
				g := g
				sh.Platform.Arbiter.DoD().RegisterTransform(
					catalog.DatasetID(seller+"/base"), "c", fmt.Sprintf("t%d_%d", d, g),
					&dod.Transform{
						Name: fmt.Sprintf("aff%d_%d", d, g),
						Kind: relation.KindFloat,
						Fn: func(v relation.Value) relation.Value {
							if v.IsNull() || !v.IsNumeric() {
								return relation.Null()
							}
							return relation.Float(v.AsFloat()*float64(g+2) + 1)
						},
					})
			}
		}
	}
	m.Start()

	var worker atomic.Int64
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(worker.Add(1)) - 1
		d := w % districts
		buyer := buyers[d][(w/districts)%buyersPerD]
		var n int64
		for pb.Next() {
			n++
			g := int(n) % groups
			cols := []string{"a", fmt.Sprintf("t%d_%d", d, g), fmt.Sprintf("w%d_%d", d, (g+1)%bases)}
			_, _ = m.SubmitRequest(
				dod.Want{Columns: cols},
				&wtp.Function{
					Buyer: buyer,
					Task:  wtp.CoverageTask{Columns: cols, WantRows: 1},
					Curve: []wtp.CurvePoint{{MinSatisfaction: 0.5, Price: 150}},
				})
		}
	})
	for m.Stats().Matched < uint64(b.N) {
		m.TriggerEpoch()
	}
	elapsed := time.Since(start)
	b.StopTimer()
	st := m.Stats()
	if st.Matched != uint64(b.N) {
		b.Fatalf("matched %d of %d requests", st.Matched, b.N)
	}
	for _, sh := range m.Shards() {
		if !sh.Engine.Settlements().Conserved() {
			b.Fatalf("shard %d settlement conservation violated", sh.Index)
		}
	}
	b.ReportMetric(float64(st.Matched)/elapsed.Seconds(), "matches/sec")
	b.ReportMetric(float64(st.Epochs), "epochs")
	buildMS := 0.0
	if st.Epochs > 0 {
		buildMS = st.BuildMillis / float64(st.Epochs)
		b.ReportMetric(buildMS, "build-ms/epoch")
	}
	recordBenchJSON(b, reg, float64(st.Matched)/elapsed.Seconds(), st.Epochs, buildMS)
}

func BenchmarkE11ExPostAudits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E11ExPostAudits(30, 42)
	}
}

func BenchmarkE12DynamicArrival(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E12DynamicArrival(42)
	}
}

// BenchmarkMatchPolicy measures the matching-policy selection cost per
// epoch: ranking 10k open-request candidates under each policy and
// splitting at a 64-request round cap — the work selectRound adds to every
// epoch when a policy or cap is configured.
func BenchmarkMatchPolicy(b *testing.B) {
	cands := make([]engine.RequestCandidate, 10_000)
	for i := range cands {
		cands[i] = engine.RequestCandidate{
			RequestID:   fmt.Sprintf("req-%05d", i),
			Participant: fmt.Sprintf("b%02d", i%17),
			Priority:    i % 3,
			FiledEpoch:  uint64(i % 97),
			FiledSeq:    i + 1,
			Age:         uint64(i % 11),
		}
	}
	for _, pol := range []engine.MatchPolicy{
		engine.PolicyFIFO{}, engine.PolicyPriority{}, engine.PolicyAging{AgeBoost: 1},
	} {
		b.Run(pol.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				selected, deferred := engine.SelectCandidates(pol, cands, 64)
				if len(selected) != 64 || len(deferred) != len(cands)-64 {
					b.Fatalf("bad split: %d/%d", len(selected), len(deferred))
				}
			}
		})
	}
}

// BenchmarkWALAppend measures the durable event log's per-record append cost
// under each fsync policy (internal/wal). `always` pays one fsync per event,
// `epoch` amortizes it over the epoch batch (the sync point here is the
// epoch-end record every 64 events), `off` leaves flushing to the OS.
func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncEpoch, wal.SyncOff} {
		b.Run(string(policy), func(b *testing.B) {
			w, err := wal.Open(wal.Options{Dir: b.TempDir(), Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kind := engine.EventRequestFiled
				if (i+1)%64 == 0 {
					kind = engine.EventEpochEnd
				}
				if err := w.Persist(engine.Event{
					Seq: i + 1, Epoch: uint64(i / 64), Kind: kind,
					Ticket: "sub-000042", Participant: "b1", RequestID: "req-0042",
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
