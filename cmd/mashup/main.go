// Command mashup is an offline Mashup Builder CLI (paper Fig. 3): point it
// at a directory of CSV files (a small data lake), and it profiles and
// indexes them, then either explores the lake or builds a mashup for a
// requested target schema.
//
// Usage:
//
//	mashup -dir ./lake -keywords customer,revenue     # discovery
//	mashup -dir ./lake -want id,name,total            # integration
//	mashup -dir ./lake -edges                         # join graph
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/catalog"
	"repro/internal/discovery"
	"repro/internal/dod"
	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/relation"
)

func loadLake(dir string) (*catalog.Catalog, []*profile.DatasetProfile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	cat := catalog.New()
	var profs []*profile.DatasetProfile
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, nil, err
		}
		name := strings.TrimSuffix(e.Name(), ".csv")
		rel, err := relation.ReadCSVInferred(name, f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		if err := cat.Register(catalog.DatasetID(name), "lake", rel); err != nil {
			return nil, nil, err
		}
		profs = append(profs, profile.Profile(name, rel))
	}
	if len(profs) == 0 {
		return nil, nil, fmt.Errorf("no .csv files in %s", dir)
	}
	return cat, profs, nil
}

func main() {
	dir := flag.String("dir", ".", "directory of CSV files")
	keywords := flag.String("keywords", "", "comma-separated keywords to search columns")
	want := flag.String("want", "", "comma-separated target schema to build a mashup for")
	edges := flag.Bool("edges", false, "print the join graph")
	out := flag.String("o", "", "write the best mashup as CSV to this file")
	flag.Parse()

	cat, profs, err := loadLake(*dir)
	if err != nil {
		log.Fatal(err)
	}
	ix := index.Build(index.DefaultConfig(), profs)
	disc := discovery.New(ix)
	fmt.Printf("indexed %d datasets, %d join edges\n", len(profs), ix.NumEdges())

	if *edges {
		for _, e := range ix.Edges() {
			fmt.Printf("%s.%s <-> %s.%s  jaccard=%.2f containment=%.2f\n",
				e.A.Dataset, e.A.Column, e.B.Dataset, e.B.Column, e.Jaccard, e.Containment)
		}
	}
	if *keywords != "" {
		for _, hit := range disc.SearchColumns(strings.Split(*keywords, ",")...) {
			fmt.Printf("%.2f  %s.%s\n", hit.Score, hit.Ref.Dataset, hit.Ref.Column)
		}
	}
	if *want != "" {
		eng := dod.New(cat, disc)
		cands, err := eng.Build(dod.Want{Columns: strings.Split(*want, ",")})
		if err != nil {
			log.Fatal(err)
		}
		for i, c := range cands {
			fmt.Printf("\ncandidate %d: coverage=%.2f quality=%.2f rows=%d datasets=%v\n",
				i+1, c.Coverage, c.Quality, c.Rel().NumRows(), c.Datasets)
			for _, step := range c.Plan {
				fmt.Println("   ", step)
			}
		}
		if *out != "" && len(cands) > 0 {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := cands[0].Rel().WriteCSV(f); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nwrote best mashup to %s\n", *out)
		}
	}
}
