// Command dmbench regenerates every experiment table from DESIGN.md's
// per-experiment index (E1–E14) in one run and prints them in the format
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	dmbench            # run everything
//	dmbench -only E5   # run one experiment (E1..E14)
//	dmbench -seed 7    # change the deterministic seed
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E14)")
	seed := flag.Int64("seed", 42, "deterministic seed")
	rounds := flag.Int("rounds", 100, "simulation rounds for E2/E3")
	flag.Parse()

	type runner struct {
		id string
		fn func() (experiments.Table, error)
	}
	runners := []runner{
		{"E1", func() (experiments.Table, error) { return experiments.E1EndToEnd(600, *seed) }},
		{"E2", func() (experiments.Table, error) { return experiments.E2SimDesigns(*rounds, *seed), nil }},
		{"E3", func() (experiments.Table, error) { return experiments.E3Coalitions(*rounds, *seed), nil }},
		{"E4", func() (experiments.Table, error) { return experiments.E4MechanismScaling(*seed), nil }},
		{"E5", func() (experiments.Table, error) { return experiments.E5Shapley(*seed), nil }},
		{"E6", func() (experiments.Table, error) { return experiments.E6MashupBuilder(*seed), nil }},
		{"E7", func() (experiments.Table, error) { return experiments.E7PrivacyValue(*seed), nil }},
		{"E8", func() (experiments.Table, error) { return experiments.E8ThinMarket(*seed), nil }},
		{"E9", func() (experiments.Table, error) { return experiments.E9Arbitrage(*seed) }},
		{"E10", func() (experiments.Table, error) { return experiments.E10Negotiation(*seed) }},
		{"E11", func() (experiments.Table, error) { return experiments.E11ExPostAudits(*rounds, *seed), nil }},
		{"E12", func() (experiments.Table, error) { return experiments.E12DynamicArrival(*seed), nil }},
		{"E13", func() (experiments.Table, error) { return experiments.E13EngineThroughput(8, 8, 4, *seed) }},
		{"E14", func() (experiments.Table, error) { return experiments.E14WALDurability(6, *seed) }},
	}
	ran := 0
	for _, r := range runners {
		if *only != "" && r.id != *only {
			continue
		}
		t, err := r.fn()
		if err != nil {
			log.Fatalf("%s failed: %v", r.id, err)
		}
		fmt.Println(t)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
}
