// Command marketsim runs the market simulator (paper §6.1, Fig. 1 step 3):
// it stresses a market design against configurable populations of truthful,
// strategic, adversarial, ignorant, risk-loving and faulty players before
// the design is deployed on a DMMS.
//
// Usage:
//
//	marketsim -mechanism vickrey -rounds 500 -buyers 50 \
//	          -mix truthful=0.5,strategic=0.3,adversarial=0.2
//
// func main is at the bottom.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/market"
	"repro/internal/sim"
)

func parseMix(s string) (map[sim.Behavior]float64, error) {
	out := map[sim.Behavior]float64{}
	if s == "" {
		out[sim.Truthful] = 1
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix term %q (want behavior=frac)", part)
		}
		f, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, err
		}
		b := sim.Behavior(kv[0])
		valid := false
		for _, known := range sim.AllBehaviors() {
			if b == known {
				valid = true
			}
		}
		if !valid {
			return nil, fmt.Errorf("unknown behavior %q (have %v)", kv[0], sim.AllBehaviors())
		}
		out[b] = f
	}
	return out, nil
}

func pickMechanism(name string, posted, reserve float64, seed int64) (market.Mechanism, error) {
	switch name {
	case "posted":
		return market.PostedPrice{P: posted}, nil
	case "vickrey":
		return market.SecondPrice{Reserve: reserve}, nil
	case "gsp":
		return market.GSP{}, nil
	case "rsop":
		return market.RSOP{Seed: seed}, nil
	case "expost":
		return market.ExPost{Deposit: 3 * posted, AuditProb: 0.3, Penalty: 4}, nil
	default:
		return nil, fmt.Errorf("unknown mechanism %q (posted|vickrey|gsp|rsop|expost)", name)
	}
}

func main() {
	mech := flag.String("mechanism", "vickrey", "posted|vickrey|gsp|rsop|expost")
	rounds := flag.Int("rounds", 200, "simulation rounds")
	buyers := flag.Int("buyers", 30, "buyers per round")
	supply := flag.Int("supply", 1, "units per round (-1 = unlimited)")
	mixFlag := flag.String("mix", "truthful=1", "behavior mix, e.g. truthful=0.6,adversarial=0.4")
	posted := flag.Float64("posted", 100, "posted price / expost deposit basis")
	reserve := flag.Float64("reserve", 0, "vickrey reserve")
	mean := flag.Float64("mean", 100, "valuation mean")
	std := flag.Float64("std", 30, "valuation std")
	seed := flag.Int64("seed", 42, "seed")
	sweep := flag.Bool("coalition-sweep", false, "sweep adversarial coalition fraction 0..50%")
	flag.Parse()

	mix, err := parseMix(*mixFlag)
	if err != nil {
		log.Fatal(err)
	}
	m, err := pickMechanism(*mech, *posted, *reserve, *seed)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.Config{
		Rounds: *rounds, NumBuyers: *buyers, Supply: *supply,
		Mix: mix, ValueMean: *mean, ValueStd: *std, Seed: *seed,
	}
	if *sweep {
		for _, res := range sim.CoalitionSweep(cfg, m, []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
			fmt.Println(res)
		}
		return
	}
	res := sim.Run(cfg, m)
	fmt.Println(res)
	fmt.Println("per-behavior mean utility:")
	for _, b := range sim.AllBehaviors() {
		if u, ok := res.UtilityByBehavior[b]; ok {
			fmt.Printf("  %-12s %+.2f\n", b, u)
		}
	}
}
