// Command dmmsd serves a Data Market Management System over HTTP: the
// arbiter management platform as a network service (paper Fig. 2). Sellers
// and buyers interact through the JSON API in internal/dmms; cmd/mashup and
// the dmms.Client are ready-made clients.
//
// Usage:
//
//	dmmsd -addr :8080 -design external-vickrey
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/core"
	"repro/internal/dmms"
	"repro/internal/market"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	design := flag.String("design", "external-vickrey", "market design label (see -list)")
	list := flag.Bool("list", false, "list available market designs and exit")
	flag.Parse()

	if *list {
		for _, l := range market.StandardDesigns().Labels() {
			log.Println(l)
		}
		return
	}
	p, err := core.NewPlatform(core.Options{Design: *design})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dmmsd: serving design %q on %s", p.Design.Label, *addr)
	if err := http.ListenAndServe(*addr, dmms.NewServer(p)); err != nil {
		log.Fatal(err)
	}
}
