// Command dmgateway serves the data market through the concurrent market
// engine: the async front end of the DMMS. Unlike cmd/dmmsd — which calls
// the platform inline and clears the market only when a client POSTs /match —
// dmgateway accepts submissions from many clients into sharded intake
// queues, batches them into epochs (ticker- or threshold-triggered), runs
// one arbiter matching round per epoch, and publishes every outcome on an
// append-only event log that clients poll via /events, /async/tickets/{id}
// and /settlements.
//
// With -wal-dir the event log is durable: every event is written ahead to a
// segmented, checksummed WAL (fsync policy via -fsync), boot replays the log
// (resuming from the newest snapshot when one exists), POST /snapshot writes
// a checkpoint on demand, and -snapshot-on-drain writes one during shutdown.
//
// With -shards N (N > 1) the market itself federates (internal/federation):
// N arbiter shards — each a full platform + engine + WAL lineage under
// <wal-dir>/shard-<i> — run their epochs concurrently behind a router, and
// mashups spanning shards settle through the cross-shard coordinator's
// two-phase commit. -shards 1 (the default) is the classic single-arbiter
// gateway, byte-identical to previous releases' replay fingerprints.
//
// Usage:
//
//	dmgateway -addr :8080 -design posted-baseline -epoch 250ms -batch 64 \
//	          -shards 4 -intake-shards 8 -dod-workers 4 -quota-rps 50 \
//	          -quota-override etl=500:1000 \
//	          -wal-dir /var/lib/dmms/wal -fsync epoch -snapshot-on-drain
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dmms"
	"repro/internal/dod"
	"repro/internal/engine"
	"repro/internal/federation"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/wal"
)

// quotaOverrideEntry is one parsed -quota-override value (rates still in
// requests/sec; translated per epoch once the ticker period is known).
type quotaOverrideEntry struct {
	rps   float64
	burst float64
}

// quotaOverrideFlag collects repeatable -quota-override name=rps[:burst]
// values.
type quotaOverrideFlag map[string]quotaOverrideEntry

func (q *quotaOverrideFlag) String() string {
	if q == nil || len(*q) == 0 {
		return ""
	}
	parts := make([]string, 0, len(*q))
	for name, o := range *q {
		parts = append(parts, fmt.Sprintf("%s=%g:%g", name, o.rps, o.burst))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (q *quotaOverrideFlag) Set(v string) error {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("quota-override %q: want name=rps[:burst]", v)
	}
	rpsStr, burstStr, hasBurst := strings.Cut(spec, ":")
	rps, err := strconv.ParseFloat(rpsStr, 64)
	if err != nil || rps < 0 {
		// Only an explicit 0 means exempt; a negative rate is almost
		// certainly a typo that would silently unthrottle the participant.
		return fmt.Errorf("quota-override %q: rps must be >= 0 (0 = exempt)", v)
	}
	var burst float64
	if hasBurst {
		if burst, err = strconv.ParseFloat(burstStr, 64); err != nil || burst < 0 {
			return fmt.Errorf("quota-override %q: burst must be >= 0", v)
		}
	}
	if *q == nil {
		*q = quotaOverrideFlag{}
	}
	(*q)[name] = quotaOverrideEntry{rps: rps, burst: burst}
	return nil
}

// toConfig translates the per-second override rates through the epoch
// period, exactly like the global -quota-rps flag: with a ticker the bucket
// refills per epoch, so rps x epoch-seconds; with manual epochs the rate
// acts per epoch directly. Burst stays absolute (tokens).
func (q quotaOverrideFlag) toConfig(epoch time.Duration) map[string]engine.QuotaOverride {
	if len(q) == 0 {
		return nil
	}
	out := make(map[string]engine.QuotaOverride, len(q))
	for name, o := range q {
		perEpoch := o.rps
		if epoch > 0 {
			perEpoch = o.rps * epoch.Seconds()
		}
		out[name] = engine.QuotaOverride{PerEpoch: perEpoch, Burst: o.burst}
	}
	return out
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	design := flag.String("design", "posted-baseline", "market design label")
	shards := flag.Int("shards", 1, "arbiter shards: >1 federates the market — N catalogs, ledgers and WAL lineages with parallel epochs and cross-shard 2PC settlement; 1 = classic single-arbiter gateway")
	intakeShards := flag.Int("intake-shards", 8, "intake queue shards per engine")
	epoch := flag.Duration("epoch", 250*time.Millisecond, "epoch ticker period (0 = threshold/manual only)")
	batch := flag.Int("batch", 64, "pending submissions that trigger an early epoch (0 = off)")
	verbose := flag.Bool("verbose", false, "log epoch summaries from the event log")
	walDir := flag.String("wal-dir", "", "write-ahead log directory (empty = in-memory only, no durability)")
	fsync := flag.String("fsync", "epoch", "WAL fsync policy: always | epoch | off")
	segBytes := flag.Int64("wal-segment-bytes", 4<<20, "WAL segment rotation size")
	snapOnDrain := flag.Bool("snapshot-on-drain", true, "write a snapshot after draining the engine on shutdown (needs -wal-dir)")
	pruneOnSnap := flag.Bool("prune-on-snapshot", true, "remove WAL segments fully covered by a written snapshot")
	policyName := flag.String("policy", "fifo", "matching policy: fifo | priority | aging")
	ageBoost := flag.Float64("age-boost", 1, "aging policy: score added per epoch an open request waits")
	epochCap := flag.Int("epoch-cap", 0, "max open requests admitted into each matching round (0 = all)")
	quotaRPS := flag.Float64("quota-rps", 0, "per-participant admitted requests per second (token bucket, enforced per epoch window; 0 = unlimited)")
	quotaBurst := flag.Float64("quota-burst", 0, "token-bucket burst capacity (0 = auto)")
	admitCap := flag.Int("admit-cap", 0, "global requests admitted per epoch window; excess get 429 (0 = unlimited)")
	maxPending := flag.Int("max-pending", 0, "queue-depth backpressure: reject submissions while this many are queued (0 = unlimited)")
	dodWorkers := flag.Int("dod-workers", 0, "async DoD builder pool size: mashup builds run on this many workers so epochs only price pre-built candidates (0 = build inline in the round)")
	metrics := flag.Bool("metrics", true, "serve Prometheus telemetry on GET /metrics (engine, builder pool, WAL, arbiter and HTTP families)")
	cacheEntries := flag.Int("dod-cache-entries", 0, "max cached DoD candidate sets; stale-first, cost-weighted eviction beyond it (0 = unlimited)")
	buildDeadline := flag.Duration("build-deadline", 0, "per-want-group DoD build deadline: a build outrunning it resolves as failed for the round (the group retries next epoch) instead of wedging a worker or the epoch (0 = unbounded)")
	allocExactMax := flag.Int("allocator-exact-max", 0, "replace the design's revenue allocator with adaptive Shapley: exact enumeration up to this many contributing datasets, confidence-bounded permutation sampling above (0 = keep the design's allocator)")
	allocErr := flag.Float64("allocator-err", 0.05, "adaptive allocator target L1 error for sampled revenue splits (with -allocator-exact-max)")
	var overrides quotaOverrideFlag
	flag.Var(&overrides, "quota-override", "per-participant quota override name=rps[:burst], overriding -quota-rps/-quota-burst for that participant (rps 0 = exempt); repeatable")
	flag.Parse()

	policy, err := engine.ParsePolicy(*policyName, *ageBoost)
	if err != nil {
		log.Fatal(err)
	}
	// The token bucket refills per epoch, so a requests-per-second quota
	// translates through the epoch period; with manually driven epochs the
	// flag acts as a per-epoch quota directly.
	quotaPerEpoch := *quotaRPS
	if *epoch > 0 {
		quotaPerEpoch = *quotaRPS * epoch.Seconds()
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	cfg := engine.Config{
		Shards:         *intakeShards,
		EpochEvery:     *epoch,
		BatchThreshold: *batch,
		Policy:         policy,
		EpochMatchCap:  *epochCap,
		DoDWorkers:     *dodWorkers,
		BuildDeadline:  *buildDeadline,
		Metrics:        reg,
		Admission: engine.AdmissionConfig{
			QuotaPerEpoch:   quotaPerEpoch,
			QuotaBurst:      *quotaBurst,
			Overrides:       overrides.toConfig(*epoch),
			EpochRequestCap: *admitCap,
			MaxPending:      *maxPending,
		},
	}

	platOpts := core.Options{Design: *design}
	if *allocExactMax > 0 {
		platOpts.Allocator = market.AdaptiveShapley{ExactMax: *allocExactMax, TargetErr: *allocErr}
	}

	// A multi-shard market takes the federated path: N arbiter shards behind
	// the routing surface, each with its own WAL lineage. -shards 1 stays on
	// the classic single-engine path below, byte-identical to prior releases.
	if *shards > 1 {
		runFederated(*addr, *shards, cfg, platOpts, reg,
			*walDir, *fsync, *segBytes, *snapOnDrain, *cacheEntries, *verbose)
		return
	}

	var (
		p   *core.Platform
		eng *engine.Engine
		w   *wal.Log
	)
	if *walDir != "" {
		syncPolicy, perr := wal.ParseSyncPolicy(*fsync)
		if perr != nil {
			log.Fatal(perr)
		}
		var res wal.BootResult
		p, eng, w, res, err = wal.Boot(platOpts, cfg,
			wal.Options{Dir: *walDir, Policy: syncPolicy, SegmentBytes: *segBytes, Metrics: reg})
		if err != nil {
			log.Fatalf("dmgateway: WAL boot: %v", err)
		}
		log.Printf("dmgateway: WAL %s: recovered %d events (snapshot seq %d, replayed %d), fsync=%s",
			*walDir, res.Recovered, res.FromSnapshotSeq, res.Replayed, syncPolicy)
	} else {
		p, err = core.NewPlatform(platOpts)
		if err != nil {
			log.Fatal(err)
		}
		eng = engine.New(p, cfg)
	}
	if *cacheEntries > 0 {
		p.SetDoDCacheConfig(dod.CacheConfig{MaxEntries: *cacheEntries})
	}
	eng.Start()

	// Metrics subscriber: tail the event log and surface epoch summaries —
	// the same consumption pattern settlement uses internally.
	if *verbose {
		// Tail from the boot-time head: replayed history was already
		// logged in its first life.
		bootHead := eng.Log().LastSeq()
		go func() {
			cursor := bootHead
			for {
				evs, open := eng.Log().WaitAfter(cursor)
				for _, ev := range evs {
					cursor = ev.Seq
					switch ev.Kind {
					case engine.EventEpochEnd:
						log.Printf("epoch %d: %s", ev.Epoch, ev.Note)
					case engine.EventTxSettled:
						log.Printf("epoch %d: %s settled for %.2f (%s)", ev.Epoch, ev.TxID, ev.Price, ev.Participant)
					}
				}
				if !open {
					return
				}
			}
		}()
	}

	server := dmms.NewEngineServer(p, eng)
	if reg != nil {
		server.SetMetrics(reg)
	}
	// Prune keeps the newest two checkpoints (the older one is the
	// corruption fallback) and drops segments + snapshots behind them.
	pruneAfterSnapshot := func() {
		if !*pruneOnSnap {
			return
		}
		if segs, snaps, err := wal.PruneAfterSnapshot(*walDir, w); err != nil {
			log.Printf("dmgateway: WAL prune: %v", err)
		} else if segs > 0 || snaps > 0 {
			log.Printf("dmgateway: pruned %d covered WAL segment(s) and %d old snapshot(s)", segs, snaps)
		}
	}
	if w != nil {
		dir := *walDir
		server.SetSnapshotFunc(func() (string, int, error) {
			snap, err := eng.Snapshot()
			if err != nil {
				return "", 0, err
			}
			path, err := wal.WriteSnapshot(dir, snap)
			if err == nil {
				pruneAfterSnapshot()
			}
			return path, snap.TakenAtSeq, err
		})
	}

	srv := &http.Server{Addr: *addr, Handler: server}
	done := make(chan struct{})
	exitCode := 0
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// Stop accepting submissions first, then drain the engine — the
		// other order would hand out tickets no epoch will ever run.
		log.Print("dmgateway: shutting down HTTP")
		_ = srv.Shutdown(context.Background())
		log.Print("dmgateway: draining engine")
		eng.Stop()
		if w != nil {
			if *snapOnDrain {
				writeDrain := func() error {
					snap, err := eng.Snapshot()
					if err != nil {
						return err
					}
					path, err := wal.WriteSnapshot(*walDir, snap)
					if err != nil {
						return err
					}
					log.Printf("dmgateway: drain snapshot %s (seq %d)", path, snap.TakenAtSeq)
					pruneAfterSnapshot()
					return nil
				}
				if err := writeDrain(); err != nil {
					// A refused checkpoint must not be silently lost: retry
					// once after a flush epoch and exit nonzero if the
					// checkpoint still cannot be written, so supervisors see
					// the failed drain. The retry covers transient snapshot
					// write failures; a wedged WAL stays wedged and reaches
					// the nonzero exit.
					log.Printf("dmgateway: drain snapshot refused: %v; retrying after a flush epoch", err)
					eng.TriggerEpoch()
					if err := writeDrain(); err != nil {
						log.Printf("dmgateway: drain snapshot failed after retry: %v", err)
						exitCode = 1
					}
				}
			}
			if err := w.Close(); err != nil {
				log.Printf("dmgateway: WAL close: %v", err)
			}
		}
	}()

	log.Printf("dmgateway: design=%q intake-shards=%d epoch=%v batch=%d policy=%s epoch-cap=%d quota-rps=%g dod-workers=%d on %s",
		p.Design.Label, *intakeShards, *epoch, *batch, policy.Name(), *epochCap, *quotaRPS, *dodWorkers, *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// runFederated boots the sharded market (internal/federation) behind the
// federation HTTP surface and blocks until shutdown. Mirrors the single-
// engine path: SIGTERM stops HTTP first, then drains; with -snapshot-on-drain
// every shard is checkpointed atomically w.r.t. the coordinator log before
// the engines stop, so no snapshot ever captures a shard mid-2PC.
func runFederated(addr string, shards int, cfg engine.Config, platOpts core.Options, reg *obs.Registry,
	walDir, fsync string, segBytes int64, snapOnDrain bool, cacheEntries int, verbose bool) {
	fcfg := federation.Config{
		Shards: shards, Dir: walDir, SegmentBytes: segBytes,
		Engine: cfg, Platform: platOpts, Metrics: reg,
	}
	if walDir != "" {
		syncPolicy, err := wal.ParseSyncPolicy(fsync)
		if err != nil {
			log.Fatal(err)
		}
		fcfg.Sync = syncPolicy
	}
	m, err := federation.Open(fcfg)
	if err != nil {
		log.Fatalf("dmgateway: federation boot: %v", err)
	}
	if cacheEntries > 0 {
		for _, sh := range m.Shards() {
			sh.Platform.SetDoDCacheConfig(dod.CacheConfig{MaxEntries: cacheEntries})
		}
	}
	m.Start()

	if verbose {
		for _, sh := range m.Shards() {
			sh := sh
			bootHead := sh.Engine.Log().LastSeq()
			go func() {
				cursor := bootHead
				for {
					evs, open := sh.Engine.Log().WaitAfter(cursor)
					for _, ev := range evs {
						cursor = ev.Seq
						switch ev.Kind {
						case engine.EventEpochEnd:
							log.Printf("shard %d epoch %d: %s", sh.Index, ev.Epoch, ev.Note)
						case engine.EventTxSettled:
							log.Printf("shard %d epoch %d: %s settled for %.2f (%s)",
								sh.Index, ev.Epoch, ev.TxID, ev.Price, ev.Participant)
						}
					}
					if !open {
						return
					}
				}
			}()
		}
	}

	server := dmms.NewFederationServer(m)
	if reg != nil {
		server.SetMetrics(reg)
	}
	srv := &http.Server{Addr: addr, Handler: server}
	done := make(chan struct{})
	exitCode := 0
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("dmgateway: shutting down HTTP")
		_ = srv.Shutdown(context.Background())
		if walDir != "" && snapOnDrain {
			// Flush whatever intake still holds into a final epoch, then
			// checkpoint all shards (SnapshotAll prunes each shard's covered
			// segments itself).
			m.TriggerEpoch()
			writeDrain := func() error {
				paths, err := m.SnapshotAll()
				if err != nil {
					return err
				}
				log.Printf("dmgateway: drain snapshots: %s", strings.Join(paths, ", "))
				return nil
			}
			if err := writeDrain(); err != nil {
				log.Printf("dmgateway: drain snapshot refused: %v; retrying after a flush epoch", err)
				m.TriggerEpoch()
				if err := writeDrain(); err != nil {
					log.Printf("dmgateway: drain snapshot failed after retry: %v", err)
					exitCode = 1
				}
			}
		}
		log.Print("dmgateway: draining shards")
		m.Stop()
	}()

	log.Printf("dmgateway: federated design=%q shards=%d intake-shards=%d epoch=%v policy=%s dod-workers=%d on %s",
		platOpts.Design, m.NumShards(), cfg.Shards, cfg.EpochEvery, cfg.Policy.Name(), cfg.DoDWorkers, addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}
