// Command dmgateway serves the data market through the concurrent market
// engine: the async front end of the DMMS. Unlike cmd/dmmsd — which calls
// the platform inline and clears the market only when a client POSTs /match —
// dmgateway accepts submissions from many clients into sharded intake
// queues, batches them into epochs (ticker- or threshold-triggered), runs
// one arbiter matching round per epoch, and publishes every outcome on an
// append-only event log that clients poll via /events, /async/tickets/{id}
// and /settlements.
//
// Usage:
//
//	dmgateway -addr :8080 -design posted-baseline -epoch 250ms -batch 64 -shards 8
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dmms"
	"repro/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	design := flag.String("design", "posted-baseline", "market design label")
	shards := flag.Int("shards", 8, "intake shards")
	epoch := flag.Duration("epoch", 250*time.Millisecond, "epoch ticker period (0 = threshold/manual only)")
	batch := flag.Int("batch", 64, "pending submissions that trigger an early epoch (0 = off)")
	verbose := flag.Bool("verbose", false, "log epoch summaries from the event log")
	flag.Parse()

	p, err := core.NewPlatform(core.Options{Design: *design})
	if err != nil {
		log.Fatal(err)
	}
	eng := engine.New(p, engine.Config{
		Shards:         *shards,
		EpochEvery:     *epoch,
		BatchThreshold: *batch,
	})
	eng.Start()

	// Metrics subscriber: tail the event log and surface epoch summaries —
	// the same consumption pattern settlement uses internally.
	if *verbose {
		go func() {
			cursor := 0
			for {
				evs, open := eng.Log().WaitAfter(cursor)
				for _, ev := range evs {
					cursor = ev.Seq
					switch ev.Kind {
					case engine.EventEpochEnd:
						log.Printf("epoch %d: %s", ev.Epoch, ev.Note)
					case engine.EventTxSettled:
						log.Printf("epoch %d: %s settled for %.2f (%s)", ev.Epoch, ev.TxID, ev.Price, ev.Participant)
					}
				}
				if !open {
					return
				}
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: dmms.NewEngineServer(p, eng)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// Stop accepting submissions first, then drain the engine — the
		// other order would hand out tickets no epoch will ever run.
		log.Print("dmgateway: shutting down HTTP")
		_ = srv.Shutdown(context.Background())
		log.Print("dmgateway: draining engine")
		eng.Stop()
	}()

	log.Printf("dmgateway: design=%q shards=%d epoch=%v batch=%d on %s",
		p.Design.Label, *shards, *epoch, *batch, *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}
